// Sharded serving must be invisible to the model: an N-shard FleetServer
// over a time-ordered fleet stream makes exactly the decisions one
// PredictionEngine makes, and the queue overload policies do what their
// names say — deterministically pinned by submitting to unstarted shards.
#include "serve/fleet_server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/check.hpp"
#include "hbm/address.hpp"
#include "trace/fleet.hpp"

namespace cordial::serve {
namespace {

/// Small fleet plus models trained on it, built once and shared read-only.
struct World {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;

  World()
      : fleet([] {
          hbm::TopologyConfig topology;
          trace::CalibrationProfile profile;
          profile.scale = 0.08;
          return trace::FleetGenerator(topology, profile).Generate(5);
        }()),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    const auto banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    Rng rng(99);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
  }

  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }
};

const World& SharedWorld() {
  static const World* world = new World();
  return *world;
}

trace::MceRecord MakeCe(double t, std::uint32_t row) {
  trace::MceRecord r;
  r.time_s = t;
  r.address.row = row;
  r.type = hbm::ErrorType::kCe;
  return r;
}

TEST(FleetServer, ShardedMatchesSingleEngineBitExactly) {
  const World& w = SharedWorld();
  core::PredictionEngine single(w.topology, w.classifier, w.single_pred,
                                w.double_or_null());
  std::size_t single_classified = 0, single_spans = 0;
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    const core::IsolationActions actions = single.Observe(record);
    if (actions.classified_now) ++single_classified;
    single_spans += actions.predicted_spans.size();
  }

  for (const std::size_t shard_count : {2u, 3u, 5u}) {
    FleetServerConfig config;
    config.shard_count = shard_count;
    std::atomic<std::size_t> classified{0}, spans{0};
    FleetServer server(
        w.topology, w.classifier, w.single_pred, w.double_or_null(), config,
        [&](std::size_t, const trace::MceRecord&,
            const core::IsolationActions& actions) {
          if (actions.classified_now) ++classified;
          spans += actions.predicted_spans.size();
        });
    server.Start();
    for (const trace::MceRecord& record : w.fleet.log.records()) {
      ASSERT_TRUE(server.Submit(record));
    }
    server.Stop();

    // Aggregate stats are the single engine's, field for field.
    EXPECT_EQ(server.AggregateStats(), single.stats())
        << "shard_count=" << shard_count;

    // Ledger totals agree too (banks are partitioned, so the shard ledgers
    // union to the single ledger).
    std::uint64_t rows_spared = 0, banks_spared = 0;
    for (std::size_t s = 0; s < server.shard_count(); ++s) {
      rows_spared += server.shard(s).engine().ledger().rows_spared();
      banks_spared += server.shard(s).engine().ledger().banks_spared();
    }
    EXPECT_EQ(rows_spared, single.ledger().rows_spared());
    EXPECT_EQ(banks_spared, single.ledger().banks_spared());

    // The sinks saw the same per-record decisions.
    EXPECT_EQ(classified.load(), single_classified);
    EXPECT_EQ(spans.load(), single_spans);

    const ShardCounters counters = server.AggregateCounters();
    EXPECT_EQ(counters.submitted, w.fleet.log.size());
    EXPECT_EQ(counters.processed, w.fleet.log.size());
    EXPECT_EQ(counters.dropped_oldest, 0u);
    EXPECT_EQ(counters.rejected, 0u);
  }
}

TEST(FleetServer, RoutingIsDeterministicAndKeepsBanksWhole) {
  const World& w = SharedWorld();
  FleetServerConfig config;
  config.shard_count = 4;
  // Unbounded retention so the replayer windows hold full bank histories.
  config.engine.retention.max_events_per_bank = 0;
  FleetServer server(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
  server.Start();
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    server.Submit(record);
  }
  server.Stop();

  // Every bank's full history landed on exactly the shard ShardOf names.
  hbm::AddressCodec codec(w.topology);
  std::size_t banks_seen = 0;
  for (const auto& bank : w.fleet.log.GroupByBank(codec)) {
    const std::size_t home = server.ShardOf(bank.bank_key);
    EXPECT_EQ(home, server.ShardOf(bank.bank_key));  // stable
    for (std::size_t s = 0; s < server.shard_count(); ++s) {
      const trace::BankHistory* found =
          server.shard(s).engine().replayer().Find(bank.bank_key);
      if (s == home) {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(found->events.size(), bank.events.size());
      } else {
        EXPECT_EQ(found, nullptr);
      }
    }
    ++banks_seen;
  }
  ASSERT_GT(banks_seen, 0u);

  // Multiple shards actually carried load at this shard count.
  std::size_t busy_shards = 0;
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    if (server.shard(s).engine().stats().events > 0) ++busy_shards;
  }
  EXPECT_GT(busy_shards, 1u);
}

TEST(FleetServerShard, RejectPolicyRefusesWhenFull) {
  const World& w = SharedWorld();
  QueueConfig queue;
  queue.capacity = 4;
  queue.policy = OverloadPolicy::kReject;
  EngineShard shard(w.topology, w.classifier, w.single_pred,
                    w.double_or_null(), core::EngineConfig{}, queue);
  // Unstarted worker: the queue fills deterministically.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(shard.Submit(MakeCe(static_cast<double>(i), i)));
  }
  for (std::uint32_t i = 4; i < 10; ++i) {
    EXPECT_FALSE(shard.Submit(MakeCe(static_cast<double>(i), i)));
  }
  ShardCounters counters = shard.counters();
  EXPECT_EQ(counters.submitted, 4u);
  EXPECT_EQ(counters.rejected, 6u);
  EXPECT_EQ(counters.dropped_oldest, 0u);

  shard.Start();
  shard.Drain();
  counters = shard.counters();
  EXPECT_EQ(counters.processed, 4u);
  EXPECT_EQ(shard.engine().stats().events, 4u);
}

TEST(FleetServerShard, DropOldestEvictsInArrivalOrder) {
  const World& w = SharedWorld();
  QueueConfig queue;
  queue.capacity = 4;
  queue.policy = OverloadPolicy::kDropOldest;
  EngineShard shard(w.topology, w.classifier, w.single_pred,
                    w.double_or_null(), core::EngineConfig{}, queue);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(shard.Submit(MakeCe(static_cast<double>(i), 100 + i)));
  }
  ShardCounters counters = shard.counters();
  EXPECT_EQ(counters.submitted, 10u);
  EXPECT_EQ(counters.dropped_oldest, 6u);
  EXPECT_EQ(counters.rejected, 0u);

  shard.Start();
  shard.Drain();
  // The newest four survived: rows 106..109 in order.
  EXPECT_EQ(shard.engine().stats().events, 4u);
  EXPECT_DOUBLE_EQ(shard.engine().now(), 9.0);
  const trace::MceRecord probe = MakeCe(0.0, 0);
  const trace::BankHistory* bank = shard.engine().replayer().Find(
      shard.engine().codec().BankKey(probe.address));
  ASSERT_NE(bank, nullptr);
  ASSERT_EQ(bank->events.size(), 4u);
  EXPECT_EQ(bank->events.front().address.row, 106u);
  EXPECT_EQ(bank->events.back().address.row, 109u);
}

TEST(FleetServerShard, BlockPolicyIsLossless) {
  const World& w = SharedWorld();
  QueueConfig queue;
  queue.capacity = 2;  // tiny bound: the producer must block repeatedly
  queue.policy = OverloadPolicy::kBlock;
  EngineShard shard(w.topology, w.classifier, w.single_pred,
                    w.double_or_null(), core::EngineConfig{}, queue);
  shard.Start();
  constexpr std::uint32_t kRecords = 500;
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    EXPECT_TRUE(shard.Submit(MakeCe(static_cast<double>(i), i % 64)));
  }
  shard.Stop();
  const ShardCounters counters = shard.counters();
  EXPECT_EQ(counters.submitted, kRecords);
  EXPECT_EQ(counters.processed, kRecords);
  EXPECT_EQ(counters.dropped_oldest, 0u);
  EXPECT_EQ(counters.rejected, 0u);
  EXPECT_EQ(shard.engine().stats().events, kRecords);
}

TEST(FleetServerShard, StopDrainsPendingWorkAndIsIdempotent) {
  const World& w = SharedWorld();
  EngineShard shard(w.topology, w.classifier, w.single_pred,
                    w.double_or_null(), core::EngineConfig{});
  for (std::uint32_t i = 0; i < 32; ++i) {
    shard.Submit(MakeCe(static_cast<double>(i), i));
  }
  shard.Start();
  shard.Stop();  // must process everything already queued
  EXPECT_EQ(shard.engine().stats().events, 32u);
  shard.Stop();  // second stop is a no-op
  EXPECT_FALSE(shard.Submit(MakeCe(33.0, 1)));  // stopped shards refuse
}

// The batched ingest path is an optimization, never a semantic: a server
// fed via SubmitBatch must end bit-identical — stats, ledgers, checkpoint
// bytes — to the same server fed record by record.
TEST(FleetServer, BatchedSubmitMatchesPerRecordSubmitByteExactly) {
  const World& w = SharedWorld();
  const auto run = [&](bool batched) {
    FleetServerConfig config;
    config.shard_count = 3;
    FleetServer server(w.topology, w.classifier, w.single_pred,
                       w.double_or_null(), config);
    server.Start();
    const auto& records = w.fleet.log.records();
    if (batched) {
      // Deliberately awkward batch sizes so bucket boundaries never align
      // with anything structural in the feed.
      std::size_t i = 0;
      std::size_t len = 1;
      while (i < records.size()) {
        const std::size_t n = std::min(len, records.size() - i);
        EXPECT_EQ(server.SubmitBatch(
                      std::span<const trace::MceRecord>(&records[i], n)),
                  n);
        i += n;
        len = len % 97 + 7;
      }
    } else {
      for (const trace::MceRecord& record : records) {
        server.Submit(record);
      }
    }
    server.Stop();
    std::ostringstream checkpoint;
    server.SaveCheckpoint(checkpoint);
    return std::make_pair(server.AggregateStats(), checkpoint.str());
  };
  const auto [single_stats, single_bytes] = run(false);
  const auto [batched_stats, batched_bytes] = run(true);
  EXPECT_EQ(batched_stats, single_stats);
  EXPECT_EQ(batched_bytes, single_bytes);
}

// N concurrent producers, one per shard: each producer owns every bank
// routed to its shard and feeds them in feed order, so each shard still
// sees a time-ordered stream (the replayer's monotonic-timestamp contract)
// while the producers race each other through the server API. The result
// must be bit-identical to the sequential single-submit replay.
TEST(FleetServer, ConcurrentBatchedProducersStayBitIdentical) {
  const World& w = SharedWorld();
  constexpr std::size_t kProducers = 4;
  hbm::AddressCodec codec(w.topology);

  const auto run_reference = [&] {
    FleetServerConfig config;
    config.shard_count = kProducers;
    FleetServer server(w.topology, w.classifier, w.single_pred,
                       w.double_or_null(), config);
    server.Start();
    for (const trace::MceRecord& record : w.fleet.log.records()) {
      server.Submit(record);
    }
    server.Stop();
    std::ostringstream checkpoint;
    server.SaveCheckpoint(checkpoint);
    return std::make_pair(server.AggregateStats(), checkpoint.str());
  };
  const auto [ref_stats, ref_bytes] = run_reference();

  FleetServerConfig config;
  config.shard_count = kProducers;
  FleetServer server(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);

  // Partition the feed by home shard: producer p gets shard p's records in
  // feed order (ShardOf is deterministic, so this matches the routing).
  std::vector<std::vector<trace::MceRecord>> feeds(kProducers);
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    feeds[server.ShardOf(codec.BankKey(record.address))].push_back(record);
  }

  server.Start();
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&server, &feeds, p] {
      const std::vector<trace::MceRecord>& feed = feeds[p];
      std::size_t i = 0;
      while (i < feed.size()) {
        const std::size_t n = std::min<std::size_t>(33, feed.size() - i);
        server.SubmitBatch(
            std::span<const trace::MceRecord>(&feed[i], n));
        i += n;
      }
    });
  }
  for (auto& t : producers) t.join();
  server.Stop();
  std::ostringstream checkpoint;
  server.SaveCheckpoint(checkpoint);

  EXPECT_EQ(server.AggregateStats(), ref_stats);
  EXPECT_EQ(checkpoint.str(), ref_bytes);
  const ShardCounters counters = server.AggregateCounters();
  EXPECT_EQ(counters.submitted, w.fleet.log.size());
  EXPECT_EQ(counters.processed, w.fleet.log.size());
}

TEST(FleetServerShard, BatchRejectCountsRefusedTail) {
  const World& w = SharedWorld();
  QueueConfig queue;
  queue.capacity = 4;
  queue.policy = OverloadPolicy::kReject;
  EngineShard shard(w.topology, w.classifier, w.single_pred,
                    w.double_or_null(), core::EngineConfig{}, queue);
  // Unstarted worker: the queue fills deterministically at 4.
  std::vector<trace::MceRecord> batch;
  for (std::uint32_t i = 0; i < 10; ++i) {
    batch.push_back(MakeCe(static_cast<double>(i), i));
  }
  EXPECT_EQ(shard.SubmitBatch(batch), 4u);
  const ShardCounters counters = shard.counters();
  EXPECT_EQ(counters.submitted, 4u);
  EXPECT_EQ(counters.rejected, 6u);
  shard.Start();
  shard.Drain();
  EXPECT_EQ(shard.engine().stats().events, 4u);
}

TEST(FleetServerShard, BatchDropOldestKeepsNewestInOrder) {
  const World& w = SharedWorld();
  QueueConfig queue;
  queue.capacity = 4;
  queue.policy = OverloadPolicy::kDropOldest;
  EngineShard shard(w.topology, w.classifier, w.single_pred,
                    w.double_or_null(), core::EngineConfig{}, queue);
  std::vector<trace::MceRecord> batch;
  for (std::uint32_t i = 0; i < 10; ++i) {
    batch.push_back(MakeCe(static_cast<double>(i), 100 + i));
  }
  EXPECT_EQ(shard.SubmitBatch(batch), 10u);
  ShardCounters counters = shard.counters();
  EXPECT_EQ(counters.submitted, 10u);
  EXPECT_EQ(counters.dropped_oldest, 6u);
  shard.Start();
  shard.Drain();
  // Same survivors as the single-record drop-oldest test: rows 106..109.
  EXPECT_EQ(shard.engine().stats().events, 4u);
  const trace::MceRecord probe = MakeCe(0.0, 0);
  const trace::BankHistory* bank = shard.engine().replayer().Find(
      shard.engine().codec().BankKey(probe.address));
  ASSERT_NE(bank, nullptr);
  ASSERT_EQ(bank->events.size(), 4u);
  EXPECT_EQ(bank->events.front().address.row, 106u);
  EXPECT_EQ(bank->events.back().address.row, 109u);
}

TEST(FleetServerShard, MoveSubmitIsAcceptedAndProcessed) {
  const World& w = SharedWorld();
  EngineShard shard(w.topology, w.classifier, w.single_pred,
                    w.double_or_null(), core::EngineConfig{});
  shard.Start();
  for (std::uint32_t i = 0; i < 16; ++i) {
    trace::MceRecord record = MakeCe(static_cast<double>(i), i);
    EXPECT_TRUE(shard.Submit(std::move(record)));
  }
  shard.Drain();
  EXPECT_EQ(shard.engine().stats().events, 16u);
  shard.Stop();
}

TEST(FleetServerShard, RejectsZeroCapacity) {
  const World& w = SharedWorld();
  QueueConfig queue;
  queue.capacity = 0;
  EXPECT_THROW(EngineShard(w.topology, w.classifier, w.single_pred,
                           w.double_or_null(), core::EngineConfig{}, queue),
               ContractViolation);
}

TEST(FleetServer, RejectsZeroShards) {
  const World& w = SharedWorld();
  FleetServerConfig config;
  config.shard_count = 0;
  EXPECT_THROW(FleetServer(w.topology, w.classifier, w.single_pred,
                           w.double_or_null(), config),
               ContractViolation);
}

TEST(FleetServer, InvalidRecordsAreConsumedNotCrashed) {
  const World& w = SharedWorld();
  FleetServerConfig config;
  config.shard_count = 2;
  FleetServer server(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
  server.Start();

  trace::MceRecord out_of_bounds = MakeCe(1.0, 100);
  out_of_bounds.address.row = w.topology.rows_per_bank + 5;
  trace::MceRecord bad_time = MakeCe(1.0, 100);
  bad_time.time_s = std::numeric_limits<double>::infinity();

  // Unguarded, either record would detonate BankKey's contract check on
  // the submitting thread. Guarded: consumed (true), counted, dropped.
  EXPECT_TRUE(server.Submit(out_of_bounds));
  EXPECT_TRUE(server.Submit(trace::MceRecord(bad_time)));
  EXPECT_EQ(server.invalid_records(), 2u);

  // Batch path: invalid records count toward the accepted total so remote
  // feeders see no spurious backpressure, but never reach a shard.
  std::vector<trace::MceRecord> batch = {MakeCe(2.0, 1), out_of_bounds,
                                         MakeCe(3.0, 2), bad_time};
  EXPECT_EQ(server.SubmitBatch(batch), batch.size());
  EXPECT_EQ(server.invalid_records(), 4u);
  server.Stop();
  EXPECT_EQ(server.AggregateStats().events, 2u);  // only the valid pair
  EXPECT_EQ(server.AggregateCounters().submitted, 2u);
}

}  // namespace
}  // namespace cordial::serve
