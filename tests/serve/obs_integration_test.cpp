// Observability end-to-end: a live instrumented FleetServer's merged
// metric snapshot must agree with the engine/queue ground truth, stay
// scrapable while workers are hot (no data race, no torn reads), and the
// admin plane must expose all of it as Prometheus text over real HTTP.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/check.hpp"
#include "hbm/address.hpp"
#include "obs/admin_server.hpp"
#include "obs/metrics.hpp"
#include "serve/fleet_server.hpp"
#include "trace/fleet.hpp"

namespace cordial::serve {
namespace {

/// Small fleet plus models trained on it, built once and shared read-only.
struct World {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;

  World()
      : fleet([] {
          hbm::TopologyConfig topology;
          trace::CalibrationProfile profile;
          profile.scale = 0.08;
          return trace::FleetGenerator(topology, profile).Generate(5);
        }()),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    const auto banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    Rng rng(99);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
  }

  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }
};

const World& SharedWorld() {
  static const World* world = new World();
  return *world;
}

/// Sum of a histogram family's observation counts across all label sets.
std::uint64_t SumHistogramCounts(const obs::RegistrySnapshot& snapshot,
                                 const std::string& name) {
  std::uint64_t total = 0;
  for (const obs::MetricSample& sample : snapshot.samples) {
    if (sample.name == name) total += sample.histogram.count;
  }
  return total;
}

std::string HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(FleetServerObs, MergedMetricsMatchEngineGroundTruth) {
  const World& w = SharedWorld();
  FleetServerConfig config;
  config.shard_count = 3;
  // Stride 1: every record is timed, so histogram counts are exact below.
  config.queue.latency_sample_every = 1;
  FleetServer server(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
  server.Start();
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    ASSERT_TRUE(server.Submit(record));
  }
  server.Stop();

  const core::EngineStats stats = server.AggregateStats();
  const ShardCounters counters = server.AggregateCounters();
  const obs::RegistrySnapshot merged = server.MetricsSnapshot();

  // Engine counters mirror EngineStats field for field.
  EXPECT_EQ(obs::SumCounterSamples(merged, "cordial_engine_events_total"),
            stats.events);
  EXPECT_EQ(obs::SumCounterSamples(merged, "cordial_engine_uer_events_total"),
            stats.uer_events);
  EXPECT_EQ(
      obs::SumCounterSamples(merged, "cordial_engine_banks_classified_total"),
      stats.banks_classified);
  EXPECT_EQ(
      obs::SumCounterSamples(merged, "cordial_engine_banks_spared_total"),
      stats.banks_bank_spared);
  EXPECT_EQ(
      obs::SumCounterSamples(merged, "cordial_engine_block_predictions_total"),
      stats.predictions_issued);
  EXPECT_EQ(obs::SumCounterSamples(merged, "cordial_engine_rows_spared_total"),
            stats.rows_isolated);
  EXPECT_EQ(obs::SumCounterSamples(
                merged, "cordial_engine_records_skew_dropped_total"),
            stats.records_skew_dropped);

  // Queue counters mirror ShardCounters, and both latency histograms saw
  // every processed record exactly once.
  EXPECT_EQ(
      obs::SumCounterSamples(merged, "cordial_shard_records_submitted_total"),
      counters.submitted);
  EXPECT_EQ(
      obs::SumCounterSamples(merged, "cordial_shard_records_processed_total"),
      counters.processed);
  EXPECT_EQ(SumHistogramCounts(merged, "cordial_shard_latency_seconds"),
            counters.processed);
  EXPECT_EQ(SumHistogramCounts(merged, "cordial_engine_observe_seconds"),
            counters.processed);
  EXPECT_EQ(obs::SumGaugeSamples(merged, "cordial_shard_queue_depth"), 0);
  EXPECT_GT(stats.events, 0u);  // the run exercised the hot path

  // Per-shard label sets survive the merge: one queue-depth gauge per shard.
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    EXPECT_NE(obs::FindSample(merged, "cordial_shard_queue_depth",
                              {{"shard", std::to_string(s)}}),
              nullptr);
  }

  // The rendered table carries the same totals it advertises.
  const std::string table = server.StatusTable();
  EXPECT_NE(table.find("fleet server (3 shards)"), std::string::npos);
  EXPECT_NE(table.find(std::to_string(stats.events)), std::string::npos);
}

TEST(FleetServerObs, UninstrumentedServerHasBarePathAndEmptySnapshot) {
  const World& w = SharedWorld();
  FleetServerConfig config;
  config.shard_count = 2;
  config.instrument = false;
  FleetServer server(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
  for (std::size_t s = 0; s < server.shard_count(); ++s) {
    EXPECT_FALSE(server.shard(s).instrumented());
  }
  server.Start();
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    ASSERT_TRUE(server.Submit(record));
  }
  server.Stop();
  // Decisions are identical to the instrumented path; only visibility is
  // gone — the snapshot is empty and the table degrades to "-".
  EXPECT_GT(server.AggregateStats().events, 0u);
  EXPECT_TRUE(server.MetricsSnapshot().samples.empty());
  EXPECT_NE(server.StatusTable().find("-"), std::string::npos);
}

TEST(FleetServerObs, ScrapingWhileSubmittingIsSafeAndMonotonic) {
  const World& w = SharedWorld();
  FleetServerConfig config;
  config.shard_count = 2;
  FleetServer server(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
  server.Start();

  std::atomic<bool> done{false};
  std::uint64_t last_events = 0;
  std::size_t scrapes = 0;
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const obs::RegistrySnapshot merged = server.MetricsSnapshot();
      const std::uint64_t events =
          obs::SumCounterSamples(merged, "cordial_engine_events_total");
      EXPECT_GE(events, last_events);  // counters only ever go up
      last_events = events;
      (void)server.StatusTable();
      ++scrapes;
    }
  });
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    ASSERT_TRUE(server.Submit(record));
  }
  server.Drain();
  done.store(true, std::memory_order_release);
  scraper.join();
  server.Stop();
  EXPECT_GT(scrapes, 0u);
  EXPECT_EQ(obs::SumCounterSamples(server.MetricsSnapshot(),
                                   "cordial_engine_events_total"),
            server.AggregateStats().events);
}

TEST(FleetServerObs, AdminPlaneServesFleetMetricsEndToEnd) {
  const World& w = SharedWorld();
  FleetServerConfig config;
  config.shard_count = 2;
  FleetServer server(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
  server.Start();

  obs::AdminServer admin;
  admin.AddHandler("/metrics", "text/plain; version=0.0.4; charset=utf-8",
                   [&] { return obs::RenderPrometheus(server.MetricsSnapshot()); });
  admin.AddHandler("/statusz", "text/plain; charset=utf-8",
                   [&] { return server.StatusTable(); });
  admin.Start();

  for (const trace::MceRecord& record : w.fleet.log.records()) {
    ASSERT_TRUE(server.Submit(record));
  }
  server.Drain();

  EXPECT_NE(HttpGet(admin.port(), "/healthz").find("200 OK"),
            std::string::npos);
  const std::string metrics = HttpGet(admin.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  // The acceptance pin: queue-depth gauges, observe-latency histogram
  // buckets, and sparing counters all reach the wire as Prometheus text.
  EXPECT_NE(metrics.find("# TYPE cordial_shard_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("cordial_shard_queue_depth{shard=\"0\"} 0"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE cordial_engine_observe_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("cordial_engine_observe_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(metrics.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE cordial_engine_rows_spared_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("cordial_engine_banks_spared_total"),
            std::string::npos);

  const std::string statusz = HttpGet(admin.port(), "/statusz");
  EXPECT_NE(statusz.find("fleet server (2 shards)"), std::string::npos);

  admin.Stop();
  server.Stop();
}

}  // namespace
}  // namespace cordial::serve
