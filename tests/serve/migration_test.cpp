// Live shard migration must be invisible to the model: a fleet feed split
// across two servers, with a shard's engine state exported from one and
// imported into the other mid-stream, must end in per-shard states — and a
// merged checkpoint — bit-identical to one server consuming the whole feed
// with no migration at all.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "serve/checkpoint.hpp"
#include "serve/fleet_server.hpp"
#include "support/serve_world.hpp"

namespace cordial::serve {
namespace {

using test_support::SharedWorld;
using test_support::World;

constexpr std::size_t kShards = 2;

FleetServerConfig TwoShardConfig() {
  FleetServerConfig config;
  config.shard_count = kShards;
  return config;
}

std::unique_ptr<FleetServer> MakeServer(const World& w) {
  return std::make_unique<FleetServer>(w.topology, w.classifier,
                                       w.single_pred, w.double_or_null(),
                                       TwoShardConfig());
}

/// The single-process, never-migrated reference: one server eats the whole
/// feed and writes one checkpoint.
std::string ReferenceCheckpoint(const World& w) {
  auto server = MakeServer(w);
  server->Start();
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    server->Submit(record);
  }
  server->Stop();
  std::ostringstream out;
  server->SaveCheckpoint(out);
  return out.str();
}

/// Assemble a fleet checkpoint from per-shard exports, exactly as
/// SaveCheckpoint lays it out: "shards N\n" then each shard's framed state
/// in index order.
std::string MergeExports(const std::vector<std::string>& shard_states) {
  std::string payload = "shards " + std::to_string(shard_states.size()) + "\n";
  for (const std::string& state : shard_states) payload += state;
  std::ostringstream out;
  WriteFramed(out, kFleetCheckpointMagic, kFleetCheckpointVersion, payload);
  return out.str();
}

TEST(Migration, ShardIndexOfAgreesWithMemberRouting) {
  const World& w = SharedWorld();
  auto server = MakeServer(w);
  hbm::AddressCodec codec(w.topology);
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    const std::uint64_t key = codec.BankKey(record.address);
    EXPECT_EQ(server->ShardOf(key), FleetServer::ShardIndexOf(key, kShards));
  }
}

TEST(Migration, EmptyShardRoundTripsBetweenServers) {
  const World& w = SharedWorld();
  auto a = MakeServer(w);
  auto b = MakeServer(w);
  a->Start();
  b->Start();

  // No traffic at all: the exported state is a fresh engine's, and pushing
  // it through another server changes nothing.
  const std::string state = a->ExportShard(0);
  EXPECT_FALSE(state.empty());
  b->ImportShard(0, state);
  EXPECT_EQ(b->ExportShard(0), state);
  EXPECT_EQ(b->AggregateStats().events, 0u);
  a->Stop();
  b->Stop();
}

TEST(Migration, MalformedImportThrowsAndLeavesShardUnchanged) {
  const World& w = SharedWorld();
  auto server = MakeServer(w);
  server->Start();
  const std::string before = server->ExportShard(1);
  EXPECT_THROW(server->ImportShard(1, "not a framed engine state"),
               ParseError);
  EXPECT_EQ(server->ExportShard(1), before);
  server->Stop();
}

/// Drive the migrated topology: two servers, each constructed with the full
/// shard count; `owner[s]` says which server currently receives shard s's
/// records. Returns the merged checkpoint of the final owners.
std::string RunMigratedScenario(
    const World& w,
    const std::function<void(std::size_t record_index, FleetServer& a,
                             FleetServer& b, std::vector<FleetServer*>& owner)>&
        before_record) {
  auto a = MakeServer(w);
  auto b = MakeServer(w);
  a->Start();
  b->Start();
  hbm::AddressCodec codec(w.topology);

  std::vector<FleetServer*> owner(kShards, a.get());
  const auto& records = w.fleet.log.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    before_record(i, *a, *b, owner);
    const std::size_t shard =
        FleetServer::ShardIndexOf(codec.BankKey(records[i].address), kShards);
    EXPECT_TRUE(owner[shard]->Submit(records[i]));
  }
  a->Stop();
  b->Stop();

  std::vector<std::string> states;
  for (std::size_t s = 0; s < kShards; ++s) {
    states.push_back(owner[s]->ExportShard(s));
  }
  return MergeExports(states);
}

TEST(Migration, MidStreamMigrationIsBitIdenticalToNoMigration) {
  const World& w = SharedWorld();
  const std::string reference = ReferenceCheckpoint(w);
  const std::size_t half = w.fleet.log.size() / 2;

  const std::string merged = RunMigratedScenario(
      w, [&](std::size_t i, FleetServer& a, FleetServer& b,
             std::vector<FleetServer*>& owner) {
        if (i == half && owner[1] == &a) {
          b.ImportShard(1, a.ExportShard(1));
          owner[1] = &b;
        }
      });
  EXPECT_EQ(merged, reference);
}

TEST(Migration, DoubleMigrationReturnsHomeBitIdentically) {
  const World& w = SharedWorld();
  const std::string reference = ReferenceCheckpoint(w);
  const std::size_t third = w.fleet.log.size() / 3;

  // Shard 1 moves A→B at one third, then B→A at two thirds: a shard that
  // migrates twice must be indistinguishable from one that never moved.
  const std::string merged = RunMigratedScenario(
      w, [&](std::size_t i, FleetServer& a, FleetServer& b,
             std::vector<FleetServer*>& owner) {
        if (i == third) {
          b.ImportShard(1, a.ExportShard(1));
          owner[1] = &b;
        } else if (i == 2 * third) {
          a.ImportShard(1, b.ExportShard(1));
          owner[1] = &a;
        }
      });
  EXPECT_EQ(merged, reference);
}

TEST(Migration, InterleavedCheckpointRestoreDoesNotDisturbMigration) {
  const World& w = SharedWorld();
  const std::string reference = ReferenceCheckpoint(w);
  const std::size_t n = w.fleet.log.size();

  // Server A checkpoints itself and restores from that checkpoint right
  // before the migration, and again right after: a full save/restore cycle
  // between migrations must not perturb a single byte of the outcome.
  const auto cycle_checkpoint = [](FleetServer& server) {
    server.Drain();
    std::stringstream snapshot;
    server.SaveCheckpoint(snapshot);
    server.RestoreCheckpoint(snapshot);
  };
  const std::string merged = RunMigratedScenario(
      w, [&](std::size_t i, FleetServer& a, FleetServer& b,
             std::vector<FleetServer*>& owner) {
        if (i == n / 4) {
          cycle_checkpoint(a);
        } else if (i == n / 2) {
          b.ImportShard(1, a.ExportShard(1));
          owner[1] = &b;
        } else if (i == (3 * n) / 4) {
          cycle_checkpoint(a);
          cycle_checkpoint(b);
        }
      });
  EXPECT_EQ(merged, reference);
}

TEST(Migration, ExportedShardMatchesCheckpointSection) {
  const World& w = SharedWorld();
  auto server = MakeServer(w);
  server->Start();
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    server->Submit(record);
  }
  server->Drain();

  // Exports in index order, concatenated under the "shards N" line, ARE the
  // checkpoint payload — the exact property the migration driver's merged
  // collection relies on.
  std::vector<std::string> states;
  for (std::size_t s = 0; s < kShards; ++s) {
    states.push_back(server->ExportShard(s));
  }
  std::ostringstream checkpoint;
  server->SaveCheckpoint(checkpoint);
  EXPECT_EQ(MergeExports(states), checkpoint.str());
  server->Stop();
}

}  // namespace
}  // namespace cordial::serve
