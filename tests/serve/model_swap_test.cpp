// Hot-swap determinism: model generations published through a ModelSlot are
// adopted at exact record boundaries, so a run with K swaps of an identical
// model is byte-identical to a no-swap run, and a checkpoint taken across
// swap history restores and resumes bit-exactly.
#include <gtest/gtest.h>

#include <set>
#include <span>
#include <sstream>
#include <vector>

#include "core/model_slot.hpp"
#include "support/serve_world.hpp"

namespace cordial::serve {
namespace {

using test_support::SharedWorld;
using test_support::World;

/// A ModelSet carrying the World's (champion) models — publishing it again
/// is a swap that changes the version but not one bit of behaviour.
core::ModelSet SameModels(const World& w) {
  core::ModelSet set;
  set.classifier = core::UnownedModel(w.classifier);
  set.single = core::UnownedModel(w.single_pred);
  if (w.double_ok) set.double_row = core::UnownedModel(w.double_pred);
  return set;
}

trace::MceRecord MakeCe(double time_s, std::uint32_t row) {
  trace::MceRecord r;
  r.time_s = time_s;
  r.address.row = row;
  r.type = hbm::ErrorType::kCe;
  return r;
}

TEST(ModelSwap, KSwapsOfIdenticalModelAreByteIdenticalToNoSwap) {
  const World& w = SharedWorld();
  const std::vector<trace::MceRecord>& records = w.fleet.log.records();
  constexpr std::size_t kSwaps = 4;
  const std::size_t chunks = kSwaps + 1;
  const std::size_t chunk_len = (records.size() + chunks - 1) / chunks;

  const auto run = [&](core::ModelSlot* slot) {
    FleetServerConfig config;
    config.shard_count = 3;
    config.model_slot = slot;
    FleetServer server(w.topology, w.classifier, w.single_pred,
                       w.double_or_null(), config);
    server.Start();
    for (std::size_t i = 0; i < records.size(); i += chunk_len) {
      const std::size_t n = std::min(chunk_len, records.size() - i);
      server.SubmitBatch(std::span<const trace::MceRecord>(&records[i], n));
      if (slot != nullptr && i + n < records.size()) {
        server.Drain();  // the publish lands between two whole chunks
        slot->Publish(SameModels(w));
      }
    }
    server.Stop();
    std::ostringstream checkpoint;
    server.SaveCheckpoint(checkpoint);

    if (slot != nullptr) {
      // Every shard that processed a record after the final publish serves
      // the final generation; swaps were counted.
      std::set<std::size_t> touched_after_last_publish;
      std::uint64_t total_swaps = 0;
      const std::size_t last_chunk_start = (chunks - 1) * chunk_len;
      for (std::size_t i = last_chunk_start; i < records.size(); ++i) {
        touched_after_last_publish.insert(
            server.ShardOf(server.codec().BankKey(records[i].address)));
      }
      const std::vector<std::uint64_t> versions = server.ModelVersions();
      for (const std::size_t s : touched_after_last_publish) {
        EXPECT_EQ(versions[s], slot->version());
      }
      for (std::size_t s = 0; s < server.shard_count(); ++s) {
        total_swaps += server.shard(s).engine().model_swaps();
      }
      EXPECT_GT(total_swaps, 0u);
    }
    return std::make_pair(server.AggregateStats(), checkpoint.str());
  };

  const auto [plain_stats, plain_bytes] = run(nullptr);
  core::ModelSlot slot(SameModels(w));
  const auto [swap_stats, swap_bytes] = run(&slot);
  EXPECT_EQ(slot.version(), kSwaps + 1);
  EXPECT_EQ(swap_stats, plain_stats);
  EXPECT_EQ(swap_bytes, plain_bytes);
}

TEST(ModelSwap, SwapLandsOnExactRecordBoundary) {
  const World& w = SharedWorld();
  core::ModelSlot slot(SameModels(w));

  // Single shard; the sink runs on the worker thread after every engine
  // step, so it reads the version the engine served THAT record with.
  std::vector<std::uint64_t> served_versions;
  EngineShard* self = nullptr;
  EngineShard shard(
      w.topology, w.classifier, w.single_pred, w.double_or_null(),
      core::EngineConfig{}, QueueConfig{},
      [&](const trace::MceRecord&, const core::IsolationActions&) {
        served_versions.push_back(self->model_version());
      });
  self = &shard;
  shard.AttachModelSlot(slot);
  shard.Start();

  constexpr std::size_t kBefore = 7;
  constexpr std::size_t kAfter = 5;
  for (std::size_t i = 0; i < kBefore; ++i) {
    ASSERT_TRUE(shard.Submit(MakeCe(static_cast<double>(i), 10 + i)));
  }
  shard.Drain();  // records 0..kBefore-1 fully served before the publish
  slot.Publish(SameModels(w));
  for (std::size_t i = 0; i < kAfter; ++i) {
    ASSERT_TRUE(
        shard.Submit(MakeCe(static_cast<double>(kBefore + i), 100 + i)));
  }
  shard.Stop();

  ASSERT_EQ(served_versions.size(), kBefore + kAfter);
  for (std::size_t i = 0; i < kBefore; ++i) {
    EXPECT_EQ(served_versions[i], 1u) << "record " << i;
  }
  for (std::size_t i = kBefore; i < served_versions.size(); ++i) {
    EXPECT_EQ(served_versions[i], 2u) << "record " << i;
  }
  EXPECT_EQ(shard.engine().model_swaps(), 1u);
}

TEST(ModelSwap, CheckpointAcrossSwapsRestoresAndResumesByteExactly) {
  const World& w = SharedWorld();
  const std::vector<trace::MceRecord>& records = w.fleet.log.records();
  const std::size_t half = records.size() / 2;
  const std::size_t rest = records.size() - half;

  core::ModelSlot slot(SameModels(w));
  FleetServerConfig config;
  config.shard_count = 2;
  config.model_slot = &slot;

  FleetServer original(w.topology, w.classifier, w.single_pred,
                       w.double_or_null(), config);
  original.Start();
  original.SubmitBatch(std::span<const trace::MceRecord>(&records[0], half));
  original.Drain();
  slot.Publish(SameModels(w));  // the checkpoint is taken across this swap
  original.SubmitBatch(
      std::span<const trace::MceRecord>(&records[half], rest / 2));
  original.Drain();
  std::ostringstream mid;
  original.SaveCheckpoint(mid);

  // A fresh server (sharing the slot) restores the mid-run checkpoint; both
  // then consume the identical tail and must end bit-identical. The model
  // version is serving state, not engine state — it is NOT in the
  // checkpoint, so the restored server adopts the slot's current generation
  // at its first record, same as the original already did.
  FleetServer restored(w.topology, w.classifier, w.single_pred,
                       w.double_or_null(), config);
  std::istringstream mid_in(mid.str());
  restored.RestoreCheckpoint(mid_in);
  restored.Start();

  const std::size_t tail_start = half + rest / 2;
  const std::size_t tail_len = records.size() - tail_start;
  for (FleetServer* server : {&original, &restored}) {
    server->SubmitBatch(
        std::span<const trace::MceRecord>(&records[tail_start], tail_len));
    server->Stop();
  }
  std::ostringstream end_a, end_b;
  original.SaveCheckpoint(end_a);
  restored.SaveCheckpoint(end_b);
  EXPECT_EQ(end_a.str(), end_b.str());
  EXPECT_EQ(restored.AggregateStats(), original.AggregateStats());
}

}  // namespace
}  // namespace cordial::serve
