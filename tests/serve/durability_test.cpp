// Durability torture: a checkpoint file mangled in ANY way — every byte
// prefix truncation, every single-bit flip — must either restore
// bit-identically or fail closed with ParseError and an untouched server,
// never UB, bad_alloc, or a half-restored engine. Plus the crash-safe
// write path (failpoint-driven syscall failures, power-cut death test) and
// the boot-time quarantine/fallback policy.
#include "serve/checkpoint.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "common/framing.hpp"
#include "core/persist.hpp"
#include "hbm/address.hpp"
#include "serve/fleet_server.hpp"
#include "trace/fleet.hpp"

namespace cordial::serve {
namespace {

struct World {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;

  World()
      : fleet([] {
          hbm::TopologyConfig topology;
          trace::CalibrationProfile profile;
          profile.scale = 0.08;
          return trace::FleetGenerator(topology, profile).Generate(5);
        }()),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    const auto banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    Rng rng(99);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
  }

  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }
};

const World& SharedWorld() {
  static const World* world = new World();
  return *world;
}

constexpr std::size_t kShardCount = 2;

FleetServer MakeServer(const World& w) {
  FleetServerConfig config;
  config.shard_count = kShardCount;
  return FleetServer(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
}

/// Feed records [begin, end) and leave the server drained (and startable
/// again — Drain, not Stop — for multi-generation checkpoint tests).
void Feed(FleetServer& server, const World& w, std::size_t begin,
          std::size_t end) {
  const auto& records = w.fleet.log.records();
  for (std::size_t i = begin; i < std::min(end, records.size()); ++i) {
    server.Submit(records[i]);
  }
  server.Drain();
}

std::string Checkpoint(const FleetServer& server) {
  std::ostringstream out;
  server.SaveCheckpoint(out);
  return out.str();
}

/// A victim server with non-trivial state of its own, so a "half restored"
/// outcome is distinguishable from "untouched".
FleetServer MakeVictim(const World& w) {
  FleetServer victim = MakeServer(w);
  victim.Start();
  Feed(victim, w, 0, 10);
  victim.Stop();
  return victim;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// Re-frame `payload` the way pre-CRC builds did: no crc32 header field.
std::string LegacyFrame(const std::string& magic, std::uint32_t version,
                        const std::string& payload) {
  std::ostringstream out;
  out << magic << " v" << version << ' ' << payload.size() << '\n' << payload;
  return out.str();
}

/// Rebuild a current checkpoint as a bit-identical-payload legacy file:
/// strip the crc32 field from the outer frame AND the nested per-shard
/// engine frames (that is exactly what an old build wrote).
std::string RebuildAsLegacy(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  std::istringstream payload(
      ReadFramed(in, kFleetCheckpointMagic, kFleetCheckpointVersion));
  ExpectToken(payload, "shards");
  const std::uint64_t shard_count = ReadU64Token(payload, "legacy rebuild");
  std::ostringstream legacy_payload;
  legacy_payload << "shards " << shard_count << '\n';
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    legacy_payload << LegacyFrame(
        core::kEngineStateMagic, core::kEngineStateVersion,
        ReadFramed(payload, core::kEngineStateMagic,
                   core::kEngineStateVersion));
  }
  return LegacyFrame(kFleetCheckpointMagic, kFleetCheckpointVersion,
                     legacy_payload.str());
}

/// One small donor checkpoint shared by the torture loops (they are
/// O(bytes^2), so the state fed in is deliberately tiny).
const std::string& DonorCheckpoint() {
  static const std::string* bytes = [] {
    const World& w = SharedWorld();
    FleetServer donor = MakeServer(w);
    donor.Start();
    Feed(donor, w, 0, 24);
    donor.Stop();
    return new std::string(Checkpoint(donor));
  }();
  return *bytes;
}

TEST(Durability, FullCheckpointRestoresBitIdentically) {
  const World& w = SharedWorld();
  const std::string& bytes = DonorCheckpoint();
  // The torture loops below re-parse the file once per byte/bit; keep the
  // donor small enough that they stay cheap (even under ASan).
  ASSERT_LT(bytes.size(), 16u * 1024) << "donor checkpoint grew too large "
                                         "for the O(n^2) torture loops";
  FleetServer restored = MakeServer(w);
  std::istringstream in(bytes);
  restored.RestoreCheckpoint(in);
  EXPECT_EQ(Checkpoint(restored), bytes);
}

TEST(Durability, EveryBytePrefixTruncationFailsClosed) {
  const World& w = SharedWorld();
  const std::string& bytes = DonorCheckpoint();
  FleetServer victim = MakeVictim(w);
  const std::string victim_before = Checkpoint(victim);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len));
    EXPECT_THROW(victim.RestoreCheckpoint(in), ParseError)
        << "prefix of " << len << " bytes";
    // Checking the full state every iteration would square the cost again;
    // sample it, plus the first and last prefixes.
    if (len % 64 == 0 || len + 1 == bytes.size()) {
      ASSERT_EQ(Checkpoint(victim), victim_before) << "prefix " << len;
    }
  }
  // The victim still accepts a pristine checkpoint afterwards.
  std::istringstream in(bytes);
  victim.RestoreCheckpoint(in);
  EXPECT_EQ(Checkpoint(victim), bytes);
}

TEST(Durability, EverySingleBitFlipIsDetectedAndLeavesVictimUntouched) {
  const World& w = SharedWorld();
  const std::string& bytes = DonorCheckpoint();
  FleetServer victim = MakeVictim(w);
  const std::string victim_before = Checkpoint(victim);

  std::size_t flips = 0;
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mangled = bytes;
      mangled[byte] = static_cast<char>(mangled[byte] ^ (1 << bit));
      std::istringstream in(mangled);
      EXPECT_THROW(victim.RestoreCheckpoint(in), ParseError)
          << "byte " << byte << " bit " << bit;
      if (++flips % 97 == 0) {
        ASSERT_EQ(Checkpoint(victim), victim_before)
            << "byte " << byte << " bit " << bit;
      }
    }
  }
  ASSERT_EQ(Checkpoint(victim), victim_before);
}

TEST(Durability, LegacyChecksumlessCheckpointRestoresWithCount) {
  const World& w = SharedWorld();
  const std::string& bytes = DonorCheckpoint();
  const std::string legacy = RebuildAsLegacy(bytes);
  ASSERT_EQ(legacy.find("crc32="), std::string::npos);

  const std::uint64_t legacy_before = GetFramingStats().legacy_frames_read;
  FleetServer restored = MakeServer(w);
  std::istringstream in(legacy);
  restored.RestoreCheckpoint(in);
  // Same state as the checksummed original...
  EXPECT_EQ(Checkpoint(restored), bytes);
  // ...and every checksum-less frame (outer + one per shard) was tallied.
  EXPECT_EQ(GetFramingStats().legacy_frames_read,
            legacy_before + 1 + kShardCount);
}

TEST(Durability, CorruptShardInLegacyCheckpointNeverHalfRestores) {
  // With no CRC, a legacy file's corruption is only caught by the token
  // parser, possibly deep inside the LAST shard's section — by which point
  // the earlier shards have already parsed cleanly. The strong restore
  // guarantee says none of them may have committed.
  const World& w = SharedWorld();
  std::string legacy = RebuildAsLegacy(DonorCheckpoint());
  // Corrupt a digit in the last tenth of the file (inside the final shard's
  // token stream) without changing any byte counts.
  bool corrupted = false;
  for (std::size_t i = legacy.size() - 1; i > legacy.size() * 9 / 10; --i) {
    if (legacy[i] >= '0' && legacy[i] <= '9') {
      legacy[i] = 'x';
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "no digit found to corrupt";

  FleetServer victim = MakeVictim(w);
  const std::string victim_before = Checkpoint(victim);
  std::istringstream in(legacy);
  EXPECT_THROW(victim.RestoreCheckpoint(in), ParseError);
  EXPECT_EQ(Checkpoint(victim), victim_before);
}

TEST(Durability, RecoverFallsBackToPreviousGenerationAndQuarantines) {
  const World& w = SharedWorld();
  const std::string path = ::testing::TempDir() + "cordial_durability.ckpt";
  for (const char* suffix : {"", ".prev", ".corrupt", ".prev.corrupt"}) {
    std::remove((path + suffix).c_str());
  }

  FleetServer writer = MakeServer(w);
  writer.Start();
  Feed(writer, w, 0, 16);
  WriteCheckpointFile(writer, path);  // generation 1
  const std::string gen1 = Checkpoint(writer);
  Feed(writer, w, 16, 32);
  WriteCheckpointFile(writer, path);  // generation 2; gen 1 becomes .prev
  writer.Stop();
  ASSERT_TRUE(FileExists(path + ".prev"));
  ASSERT_EQ(FileBytes(path + ".prev"), gen1);

  // Bit-rot the newest generation.
  std::string mangled = FileBytes(path);
  mangled[mangled.size() - 5] = static_cast<char>(mangled[mangled.size() - 5] ^ 0x04);
  WriteBytes(path, mangled);

  FleetServer recovered = MakeServer(w);
  const RecoveryOutcome outcome = RecoverCheckpoint(recovered, path);
  EXPECT_EQ(outcome.restored_from, path + ".prev");
  EXPECT_TRUE(outcome.fell_back());
  ASSERT_EQ(outcome.quarantined.size(), 1u);
  EXPECT_EQ(outcome.quarantined[0], path + ".corrupt");
  ASSERT_EQ(outcome.errors.size(), 1u);
  EXPECT_NE(outcome.errors[0].find("checksum"), std::string::npos)
      << outcome.errors[0];
  // The bad file moved aside for post-mortem; the server holds gen 1.
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(FileExists(path + ".corrupt"));
  EXPECT_EQ(Checkpoint(recovered), gen1);

  for (const char* suffix : {"", ".prev", ".corrupt", ".prev.corrupt"}) {
    std::remove((path + suffix).c_str());
  }
}

TEST(Durability, RecoverStartsFreshWhenEveryCandidateIsCorrupt) {
  const World& w = SharedWorld();
  const std::string path = ::testing::TempDir() + "cordial_durability2.ckpt";
  for (const char* suffix : {"", ".prev", ".corrupt", ".prev.corrupt"}) {
    std::remove((path + suffix).c_str());
  }
  WriteBytes(path, "cordial_fleet_checkpoint v1 9999\ntruncated");
  WriteBytes(path + ".prev", "garbage, not a frame");

  FleetServer recovered = MakeServer(w);
  const std::string fresh_state = Checkpoint(recovered);
  const RecoveryOutcome outcome = RecoverCheckpoint(recovered, path);
  EXPECT_EQ(outcome.restored_from, "");
  EXPECT_TRUE(outcome.fell_back());
  ASSERT_EQ(outcome.quarantined.size(), 2u);
  EXPECT_EQ(outcome.quarantined[0], path + ".corrupt");
  EXPECT_EQ(outcome.quarantined[1], path + ".prev.corrupt");
  EXPECT_EQ(outcome.errors.size(), 2u);
  EXPECT_EQ(Checkpoint(recovered), fresh_state);  // untouched: fresh start

  // Nothing to recover at all: clean fresh start, nothing quarantined.
  for (const char* suffix : {"", ".prev", ".corrupt", ".prev.corrupt"}) {
    std::remove((path + suffix).c_str());
  }
  const RecoveryOutcome empty = RecoverCheckpoint(recovered, path);
  EXPECT_EQ(empty.restored_from, "");
  EXPECT_FALSE(empty.fell_back());
  EXPECT_TRUE(empty.quarantined.empty());
}

TEST(Durability, WriteFailuresUnlinkTmpAndPreserveOldCheckpoint) {
  const World& w = SharedWorld();
  const std::string path = ::testing::TempDir() + "cordial_durability3.ckpt";
  for (const char* suffix : {"", ".tmp", ".prev"}) {
    std::remove((path + suffix).c_str());
  }

  FleetServer writer = MakeServer(w);
  writer.Start();
  Feed(writer, w, 0, 16);
  WriteCheckpointFile(writer, path);
  const std::string old_bytes = FileBytes(path);
  Feed(writer, w, 16, 32);  // new state the failing writes will try to save

  for (const char* point : {"serve.checkpoint.open", "serve.checkpoint.write",
                            "serve.checkpoint.fsync",
                            "serve.checkpoint.rename"}) {
    failpoint::Arm(point);
    EXPECT_THROW(WriteCheckpointFile(writer, path), ContractViolation)
        << point;
    EXPECT_GT(failpoint::HitCount(point), 0u) << point;  // site really hit
    failpoint::Disarm(point);
    // No debris, old checkpoint byte-identical.
    EXPECT_FALSE(FileExists(path + ".tmp")) << point;
    EXPECT_EQ(FileBytes(path), old_bytes) << point;
  }
  failpoint::DisarmAll();

  // With nothing armed the same write goes through.
  WriteCheckpointFile(writer, path);
  writer.Stop();
  EXPECT_NE(FileBytes(path), old_bytes);
  for (const char* suffix : {"", ".tmp", ".prev"}) {
    std::remove((path + suffix).c_str());
  }
}

TEST(Durability, DirsyncFailureThrowsButNewCheckpointIsInPlace) {
  // By the time the directory fsync runs the rename has happened: the new
  // checkpoint is valid and must NOT be rolled back — the error only means
  // its directory entry might not survive a power cut yet.
  const World& w = SharedWorld();
  const std::string path = ::testing::TempDir() + "cordial_durability4.ckpt";
  for (const char* suffix : {"", ".tmp", ".prev"}) {
    std::remove((path + suffix).c_str());
  }
  FleetServer writer = MakeServer(w);
  writer.Start();
  Feed(writer, w, 0, 16);
  writer.Stop();
  const std::string expected = Checkpoint(writer);

  failpoint::Arm("serve.checkpoint.dirsync");
  EXPECT_THROW(WriteCheckpointFile(writer, path), ContractViolation);
  failpoint::DisarmAll();
  EXPECT_EQ(FileBytes(path), expected);
  EXPECT_FALSE(FileExists(path + ".tmp"));

  FleetServer reader = MakeServer(w);
  ASSERT_TRUE(ReadCheckpointFile(reader, path));
  EXPECT_EQ(Checkpoint(reader), expected);
  for (const char* suffix : {"", ".tmp", ".prev"}) {
    std::remove((path + suffix).c_str());
  }
}

TEST(Durability, PowerCutBeforeRenameLeavesOldCheckpointRestorable) {
  // Simulated power cut via ::_exit inside the (forked) death-test child:
  // the tmp file is durable but unpublished, the old checkpoint still owns
  // the real name, and recovery comes up from it.
  const World& w = SharedWorld();
  const std::string path = ::testing::TempDir() + "cordial_durability5.ckpt";
  for (const char* suffix : {"", ".tmp", ".prev"}) {
    std::remove((path + suffix).c_str());
  }
  FleetServer writer = MakeServer(w);
  writer.Start();
  Feed(writer, w, 0, 16);
  WriteCheckpointFile(writer, path);
  const std::string old_bytes = FileBytes(path);
  Feed(writer, w, 16, 32);
  writer.Stop();

  failpoint::Arm("serve.checkpoint.crash_before_rename");
  EXPECT_EXIT(WriteCheckpointFile(writer, path),
              ::testing::ExitedWithCode(121), "");
  failpoint::DisarmAll();

  // The crash left the fully-written tmp file behind (it was fsync'd before
  // the cut) and never touched the published checkpoint.
  EXPECT_TRUE(FileExists(path + ".tmp"));
  EXPECT_EQ(FileBytes(path), old_bytes);

  FleetServer recovered = MakeServer(w);
  const RecoveryOutcome outcome = RecoverCheckpoint(recovered, path);
  EXPECT_EQ(outcome.restored_from, path);
  EXPECT_FALSE(outcome.fell_back());
  EXPECT_EQ(Checkpoint(recovered), old_bytes);
  for (const char* suffix : {"", ".tmp", ".prev"}) {
    std::remove((path + suffix).c_str());
  }
}

}  // namespace
}  // namespace cordial::serve
