#include "hbm/address.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/check.hpp"

namespace cordial::hbm {
namespace {

TEST(RowMapping, IdentityIsDefault) {
  RowMapping mapping;
  EXPECT_TRUE(mapping.identity());
  EXPECT_EQ(mapping.Describe(), "identity");
}

TEST(RowMapping, BitSwizzleIsAnInvolutionOnEveryRow) {
  const std::uint32_t rows = 4096;
  const RowMapping mapping = RowMapping::BitSwizzle(rows, 3);
  EXPECT_FALSE(mapping.identity());
  std::set<std::uint32_t> image;
  for (std::uint32_t l = 0; l < rows; ++l) {
    const std::uint32_t p = mapping.ToPhysical(l);
    ASSERT_LT(p, rows);
    EXPECT_EQ(mapping.ToLogical(p), l);
    EXPECT_EQ(mapping.ToPhysical(p), l);  // involution: the map is its own
    image.insert(p);                      // inverse
  }
  EXPECT_EQ(image.size(), rows);  // a permutation, not a projection
}

TEST(RowMapping, BitSwizzleMovesSomeRows) {
  const RowMapping mapping = RowMapping::BitSwizzle(32768, 3);
  std::size_t moved = 0;
  for (std::uint32_t l = 0; l < 1024; ++l) {
    if (mapping.ToPhysical(l) != l) ++moved;
  }
  EXPECT_GT(moved, 0u);
}

TEST(RowMapping, BitSwizzleRejectsBadShapes) {
  EXPECT_THROW(RowMapping::BitSwizzle(1000, 3), ContractViolation);
  EXPECT_THROW(RowMapping::BitSwizzle(4096, 0), ContractViolation);
  EXPECT_THROW(RowMapping::BitSwizzle(16, 3), ContractViolation);  // 2k > log2
}

TEST(RowMapping, ShuffleIsAPermutationWithExactInverse) {
  const std::uint32_t rows = 5000;  // not a power of two
  const RowMapping mapping = RowMapping::Shuffle(rows, 77);
  std::set<std::uint32_t> image;
  for (std::uint32_t l = 0; l < rows; ++l) {
    const std::uint32_t p = mapping.ToPhysical(l);
    ASSERT_LT(p, rows);
    EXPECT_EQ(mapping.ToLogical(p), l);
    image.insert(p);
  }
  EXPECT_EQ(image.size(), rows);
}

TEST(RowMapping, ShuffleSeedChangesThePermutation) {
  const RowMapping a = RowMapping::Shuffle(1024, 1);
  const RowMapping b = RowMapping::Shuffle(1024, 2);
  std::size_t differs = 0;
  for (std::uint32_t l = 0; l < 1024; ++l) {
    if (a.ToPhysical(l) != b.ToPhysical(l)) ++differs;
  }
  EXPECT_GT(differs, 0u);
}

TEST(RowMapping, OutOfRangeRowIsAContractViolation) {
  const RowMapping swz = RowMapping::BitSwizzle(4096, 3);
  EXPECT_THROW(swz.ToPhysical(4096), ContractViolation);
  EXPECT_THROW(swz.ToLogical(4096), ContractViolation);
  const RowMapping shuf = RowMapping::Shuffle(100, 3);
  EXPECT_THROW(shuf.ToPhysical(100), ContractViolation);
}

TEST(RowMapping, ParseAcceptsTheDocumentedSpecs) {
  EXPECT_TRUE(RowMapping::Parse("", 4096).identity());
  EXPECT_TRUE(RowMapping::Parse("identity", 4096).identity());
  const RowMapping swz = RowMapping::Parse("swizzle:4", 4096);
  EXPECT_EQ(swz.Describe(), "swizzle:4");
  const RowMapping swz_default = RowMapping::Parse("swizzle", 4096);
  EXPECT_EQ(swz_default.Describe(), "swizzle:3");
  const RowMapping shuf = RowMapping::Parse("shuffle:99", 4096);
  EXPECT_EQ(shuf.Describe(), "shuffle:99");
  // Parsed specs behave like their factory twins.
  const RowMapping direct = RowMapping::Shuffle(4096, 99);
  for (std::uint32_t l = 0; l < 4096; l += 37) {
    EXPECT_EQ(shuf.ToPhysical(l), direct.ToPhysical(l));
  }
}

TEST(RowMapping, ParseRejectsGarbage) {
  EXPECT_THROW(RowMapping::Parse("bogus", 4096), ParseError);
  EXPECT_THROW(RowMapping::Parse("swizzle:", 4096), ParseError);
  EXPECT_THROW(RowMapping::Parse("swizzle:0", 4096), ParseError);
  EXPECT_THROW(RowMapping::Parse("swizzle:99", 4096), ParseError);
  EXPECT_THROW(RowMapping::Parse("swizzle:3x", 4096), ParseError);
  EXPECT_THROW(RowMapping::Parse("shuffle:", 4096), ParseError);
  EXPECT_THROW(RowMapping::Parse("shuffle:abc", 4096), ParseError);
}

TEST(RowMapping, CodecRemapsOnlyTheRowCoordinate) {
  const TopologyConfig topology;
  const AddressCodec codec(topology);
  const RowMapping mapping =
      RowMapping::BitSwizzle(topology.rows_per_bank, 3);
  DeviceAddress a;
  a.node = 3;
  a.bank_group = 2;
  a.row = 41;
  a.col = 7;
  const DeviceAddress physical = codec.ToPhysical(a, mapping);
  EXPECT_EQ(physical.row, mapping.ToPhysical(41u));
  DeviceAddress expect = a;
  expect.row = physical.row;
  EXPECT_EQ(physical, expect);  // every other coordinate untouched
  EXPECT_EQ(codec.ToLogical(physical, mapping), a);
}

TEST(RowMapping, CodecRejectsAMappingSizedForAnotherTopology) {
  const TopologyConfig topology;
  const AddressCodec codec(topology);
  const RowMapping wrong = RowMapping::Shuffle(128, 1);
  DeviceAddress a;
  a.row = 5;
  EXPECT_THROW(codec.ToPhysical(a, wrong), ContractViolation);
}

}  // namespace
}  // namespace cordial::hbm
