#include "hbm/ecc.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::hbm {
namespace {

TEST(SecDed, CleanCodewordDecodesClean) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t data = rng.Next();
    const auto word = SecDedCodec::Encode(data);
    const DecodeResult result = SecDedCodec::Decode(word);
    EXPECT_EQ(result.status, DecodeResult::Status::kClean);
    EXPECT_EQ(result.data, data);
  }
}

TEST(SecDed, EncodeIsDeterministic) {
  EXPECT_EQ(SecDedCodec::Encode(0xdeadbeefcafebabeULL),
            SecDedCodec::Encode(0xdeadbeefcafebabeULL));
}

TEST(SecDed, DistinctDataDistinctCodewords) {
  const auto a = SecDedCodec::Encode(1);
  const auto b = SecDedCodec::Encode(2);
  EXPECT_FALSE(a == b);
}

class SingleBitTest : public ::testing::TestWithParam<int> {};

TEST_P(SingleBitTest, EveryPositionIsCorrected) {
  const int bit = GetParam();
  Rng rng(static_cast<std::uint64_t>(bit) + 7);
  const std::uint64_t data = rng.Next();
  const auto word = SecDedCodec::Encode(data);
  const auto corrupted = SecDedCodec::FlipBit(word, bit);
  const DecodeResult result = SecDedCodec::Decode(corrupted);
  EXPECT_EQ(result.status, DecodeResult::Status::kCorrectedSingle);
  EXPECT_EQ(result.data, data);
  ASSERT_TRUE(result.corrected_bit.has_value());
  EXPECT_EQ(*result.corrected_bit, bit);
}

INSTANTIATE_TEST_SUITE_P(AllBits, SingleBitTest, ::testing::Range(0, 72));

TEST(SecDed, AllDoubleBitErrorsDetected) {
  const std::uint64_t data = 0x0123456789abcdefULL;
  const auto word = SecDedCodec::Encode(data);
  for (int i = 0; i < SecDedCodec::kCodeBits; ++i) {
    for (int j = i + 1; j < SecDedCodec::kCodeBits; ++j) {
      const auto corrupted =
          SecDedCodec::FlipBit(SecDedCodec::FlipBit(word, i), j);
      const DecodeResult result = SecDedCodec::Decode(corrupted);
      EXPECT_EQ(result.status, DecodeResult::Status::kDetectedDouble)
          << "bits " << i << "," << j;
    }
  }
}

TEST(SecDed, TripleBitErrorsNeverSilentlyCorruptWithTruth) {
  Rng rng(9);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t data = rng.Next();
    auto word = SecDedCodec::Encode(data);
    const auto bits = rng.SampleWithoutReplacement(72, 3);
    for (std::size_t b : bits) {
      word = SecDedCodec::FlipBit(word, static_cast<int>(b));
    }
    const DecodeResult result =
        SecDedCodec::DecodeWithTruth(word, data);
    // Triple errors either get flagged (double-detect / mis-correct) or by
    // chance decode correctly — but DecodeWithTruth must never claim clean
    // or corrected while returning wrong data.
    if (result.status == DecodeResult::Status::kClean ||
        result.status == DecodeResult::Status::kCorrectedSingle) {
      EXPECT_EQ(result.data, data);
    }
  }
}

TEST(SecDed, TripleBitErrorsUsuallyMiscorrect) {
  // An SEC-DED code cannot correct three flips; most such patterns must be
  // flagged as kDetectedDouble or kUndetectedOrMis.
  Rng rng(10);
  int flagged = 0;
  constexpr int kTrials = 500;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t data = rng.Next();
    auto word = SecDedCodec::Encode(data);
    for (std::size_t b : rng.SampleWithoutReplacement(72, 3)) {
      word = SecDedCodec::FlipBit(word, static_cast<int>(b));
    }
    const auto result = SecDedCodec::DecodeWithTruth(word, data);
    if (result.status == DecodeResult::Status::kDetectedDouble ||
        result.status == DecodeResult::Status::kUndetectedOrMis) {
      ++flagged;
    }
  }
  EXPECT_GT(flagged, kTrials * 9 / 10);
}

TEST(SecDed, FlipBitIsInvolution) {
  const auto word = SecDedCodec::Encode(42);
  for (int bit = 0; bit < 72; ++bit) {
    EXPECT_EQ(SecDedCodec::FlipBit(SecDedCodec::FlipBit(word, bit), bit), word);
  }
}

TEST(SecDed, FlipBitRejectsOutOfRange) {
  const auto word = SecDedCodec::Encode(0);
  EXPECT_THROW(SecDedCodec::FlipBit(word, -1), ContractViolation);
  EXPECT_THROW(SecDedCodec::FlipBit(word, 72), ContractViolation);
}

TEST(ClassifyError, MapsBitCountsAndContext) {
  EXPECT_EQ(ClassifyError(1, false), ErrorType::kCe);
  EXPECT_EQ(ClassifyError(1, true), ErrorType::kCe);
  EXPECT_EQ(ClassifyError(2, true), ErrorType::kUeo);
  EXPECT_EQ(ClassifyError(2, false), ErrorType::kUer);
  EXPECT_EQ(ClassifyError(5, true), ErrorType::kUeo);
  EXPECT_EQ(ClassifyError(5, false), ErrorType::kUer);
}

TEST(ClassifyError, RejectsZeroBits) {
  EXPECT_THROW(ClassifyError(0, false), ContractViolation);
}

TEST(ErrorType, NamesMatchPaperTerminology) {
  EXPECT_STREQ(ErrorTypeName(ErrorType::kCe), "CE");
  EXPECT_STREQ(ErrorTypeName(ErrorType::kUeo), "UEO");
  EXPECT_STREQ(ErrorTypeName(ErrorType::kUer), "UER");
}

}  // namespace
}  // namespace cordial::hbm
