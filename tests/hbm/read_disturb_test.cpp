#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/rng.hpp"
#include "hbm/bank_sim.hpp"
#include "hbm/fault.hpp"

namespace cordial::hbm {
namespace {

// --- static footprint ------------------------------------------------------

TEST(ReadDisturbFootprint, VictimsClusterAroundTheAggressors) {
  const TopologyConfig topology;
  const FootprintGenerator generator(topology);
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const BankFaultPlan plan =
        generator.Generate(PatternShape::kReadDisturb, rng);
    EXPECT_EQ(plan.shape, PatternShape::kReadDisturb);
    EXPECT_EQ(plan.kind, FaultKind::kReadDisturb);
    ASSERT_FALSE(plan.aggressor_rows.empty());
    ASSERT_GE(plan.uer_rows.size(), 3u);
    std::vector<std::uint32_t> rows;
    for (const RowErrors& r : plan.uer_rows) {
      EXPECT_FALSE(r.cols.empty());
      rows.push_back(r.row);
    }
    // Every victim within blast radius 2 of some aggressor; aggressors
    // themselves never fail.
    for (std::uint32_t row : rows) {
      bool near = false;
      for (std::uint32_t agg : plan.aggressor_rows) {
        EXPECT_NE(row, agg);
        const std::uint32_t lo = agg > row ? agg - row : row - agg;
        near = near || lo <= 2;
      }
      EXPECT_TRUE(near) << "victim row " << row << " outside blast radius";
    }
    // Compact geometry: span <= 6 rows around the aggressor pair.
    const auto [min_it, max_it] = std::minmax_element(rows.begin(), rows.end());
    EXPECT_LE(*max_it - *min_it, 6u);
  }
}

TEST(ReadDisturbFootprint, CollapsesToSingleRowClustering) {
  EXPECT_EQ(CollapseToClass(PatternShape::kReadDisturb),
            FailureClass::kSingleRowClustering);
  EXPECT_EQ(RootCauseOf(PatternShape::kReadDisturb), FaultKind::kReadDisturb);
  EXPECT_STREQ(PatternShapeName(PatternShape::kReadDisturb), "read-disturb");
  EXPECT_STREQ(FaultKindName(FaultKind::kReadDisturb), "read-disturb");
}

// --- activation-pressure simulation ---------------------------------------

class ReadDisturbSimTest : public ::testing::Test {
 protected:
  TopologyConfig topology_;
  BankSimulator sim_{topology_, PatrolScrubber(100.0, 0.0)};
};

TEST_F(ReadDisturbSimTest, HammeringFlipsANeighborIntoCeThenUer) {
  const std::uint32_t aggressor = 500;
  // Well past the second-flip threshold: some victim must have escalated
  // from one flipped bit (CE) to two in the same ECC word (UER on read).
  sim_.ActivateRow(aggressor, 200000, 1.0);
  EXPECT_GE(sim_.disturb_flips(), 2u);
  bool saw_uer = false;
  for (std::uint32_t victim : {499u, 501u, 498u, 502u}) {
    for (std::uint32_t col = 0; col < topology_.cols_per_bank; ++col) {
      const auto result = sim_.Read(victim, col, 2.0);
      if (result.finding.has_value() &&
          result.finding->type == ErrorType::kUer) {
        saw_uer = true;
      }
    }
  }
  EXPECT_TRUE(saw_uer);
}

TEST_F(ReadDisturbSimTest, ModestHammeringIsHarmless) {
  sim_.ActivateRow(500, 1000, 1.0);  // an order below the first threshold
  EXPECT_EQ(sim_.disturb_flips(), 0u);
  for (std::uint32_t col = 0; col < topology_.cols_per_bank; ++col) {
    EXPECT_TRUE(sim_.Read(499, col, 2.0).data_correct);
    EXPECT_TRUE(sim_.Read(501, col, 2.0).data_correct);
  }
}

TEST_F(ReadDisturbSimTest, DistanceTwoVictimsNeedMorePressure) {
  // Enough pressure to flip a distance-1 victim but (weighted at 0.25)
  // not a distance-2 one: only rows +-1 may carry flips.
  sim_.ActivateRow(500, 30000, 1.0);
  const std::uint64_t flips_near = sim_.disturb_flips();
  EXPECT_GE(flips_near, 1u);
  for (std::uint32_t col = 0; col < topology_.cols_per_bank; ++col) {
    EXPECT_TRUE(sim_.Read(498, col, 2.0).data_correct);
    EXPECT_TRUE(sim_.Read(502, col, 2.0).data_correct);
  }
}

TEST_F(ReadDisturbSimTest, RefreshResetsPressureButNotFlippedBits) {
  sim_.ActivateRow(500, 200000, 1.0);
  const std::uint64_t flips = sim_.disturb_flips();
  EXPECT_GE(flips, 1u);
  sim_.Refresh();
  EXPECT_EQ(sim_.ActivationCount(500), 0u);
  // The charge reset does not heal corrupted cells...
  EXPECT_EQ(sim_.disturb_flips(), flips);
  // ...and with pressure gone, further light activation plants nothing new.
  sim_.ActivateRow(500, 1000, 3.0);
  EXPECT_EQ(sim_.disturb_flips(), flips);
}

TEST_F(ReadDisturbSimTest, PressureAccumulatesAcrossCalls) {
  // 20 bursts of 10k = 200k total: same flips as one big hammer.
  for (int burst = 0; burst < 20; ++burst) {
    sim_.ActivateRow(500, 10000, 1.0 + burst);
  }
  BankSimulator one_shot(topology_, PatrolScrubber(100.0, 0.0));
  one_shot.ActivateRow(500, 200000, 1.0);
  EXPECT_EQ(sim_.disturb_flips(), one_shot.disturb_flips());
}

TEST_F(ReadDisturbSimTest, BoundsAreEnforced) {
  EXPECT_THROW(sim_.ActivateRow(topology_.rows_per_bank, 1, 1.0),
               ContractViolation);
  // Hammering the edge row must not touch out-of-bank neighbours.
  sim_.ActivateRow(0, 200000, 1.0);
  sim_.ActivateRow(topology_.rows_per_bank - 1, 200000, 1.0);
  EXPECT_GE(sim_.disturb_flips(), 1u);
}

// --- opt-in labeler rule ---------------------------------------------------

TEST(ReadDisturbLabeler, OffByDefaultKeepsPaperLabels) {
  const TopologyConfig topology;
  const analysis::PatternLabeler labeler(topology);
  // A tight 3-row cluster is a single-row cluster under the paper's
  // five-shape taxonomy — the read-disturb rule must not fire unless asked.
  EXPECT_EQ(labeler.LabelShape({100, 101, 102}, {5, 5, 5}),
            PatternShape::kSingleRowCluster);
}

TEST(ReadDisturbLabeler, OptInRuleLabelsTightClusters) {
  const TopologyConfig topology;
  analysis::LabelerParams params;
  params.detect_read_disturb = true;
  const analysis::PatternLabeler labeler(topology, params);
  EXPECT_EQ(labeler.LabelShape({100, 101, 102}, {5, 9, 5}),
            PatternShape::kReadDisturb);
  EXPECT_EQ(labeler.LabelShape({100, 102, 104}, {5, 9, 5}),
            PatternShape::kReadDisturb);
  // Too few rows, too wide a span, or too big a gap: not read-disturb.
  EXPECT_NE(labeler.LabelShape({100, 101}, {5, 5}),
            PatternShape::kReadDisturb);
  EXPECT_NE(labeler.LabelShape({100, 104, 108}, {5, 5, 5}),
            PatternShape::kReadDisturb);
  EXPECT_NE(labeler.LabelShape({100, 101, 120}, {5, 5, 5}),
            PatternShape::kReadDisturb);
}

}  // namespace
}  // namespace cordial::hbm
