#include "hbm/address.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::hbm {
namespace {

DeviceAddress RandomAddress(const TopologyConfig& t, Rng& rng) {
  DeviceAddress a;
  a.node = static_cast<std::uint32_t>(rng.UniformU64(t.nodes));
  a.npu = static_cast<std::uint32_t>(rng.UniformU64(t.npus_per_node));
  a.hbm = static_cast<std::uint32_t>(rng.UniformU64(t.hbms_per_npu));
  a.sid = static_cast<std::uint32_t>(rng.UniformU64(t.sids_per_hbm));
  a.channel = static_cast<std::uint32_t>(rng.UniformU64(t.channels_per_sid));
  a.pseudo_channel = static_cast<std::uint32_t>(
      rng.UniformU64(t.pseudo_channels_per_channel));
  a.bank_group = static_cast<std::uint32_t>(
      rng.UniformU64(t.bank_groups_per_pseudo_channel));
  a.bank = static_cast<std::uint32_t>(rng.UniformU64(t.banks_per_bank_group));
  a.row = static_cast<std::uint32_t>(rng.UniformU64(t.rows_per_bank));
  a.col = static_cast<std::uint32_t>(rng.UniformU64(t.cols_per_bank));
  return a;
}

TEST(AddressCodec, PackUnpackRoundTripProperty) {
  const TopologyConfig t;
  const AddressCodec codec(t);
  Rng rng(101);
  for (int i = 0; i < 2000; ++i) {
    const DeviceAddress a = RandomAddress(t, rng);
    const std::uint64_t key = codec.Pack(a);
    EXPECT_EQ(codec.Unpack(key), a);
  }
}

TEST(AddressCodec, UnpackPackRoundTripOnSmallTopology) {
  TopologyConfig t;
  t.nodes = 2;
  t.npus_per_node = 2;
  t.hbms_per_npu = 2;
  t.sids_per_hbm = 2;
  t.channels_per_sid = 2;
  t.pseudo_channels_per_channel = 2;
  t.bank_groups_per_pseudo_channel = 2;
  t.banks_per_bank_group = 2;
  t.rows_per_bank = 256;
  t.cols_per_bank = 4;
  const AddressCodec codec(t);
  const std::uint64_t space = 256ULL * 256 * 4;
  for (std::uint64_t key = 0; key < space; key += 7) {
    EXPECT_EQ(codec.Pack(codec.Unpack(key)), key);
  }
}

TEST(AddressCodec, ZeroAddressPacksToZero) {
  const AddressCodec codec{TopologyConfig{}};
  EXPECT_EQ(codec.Pack(DeviceAddress{}), 0u);
}

TEST(AddressCodec, PackRejectsOutOfRange) {
  const TopologyConfig t;
  const AddressCodec codec(t);
  DeviceAddress a;
  a.row = t.rows_per_bank;  // one past the end
  EXPECT_FALSE(codec.IsValid(a));
  EXPECT_THROW(codec.Pack(a), ContractViolation);
}

TEST(AddressCodec, UnpackRejectsKeyBeyondSpace) {
  TopologyConfig t;
  t.nodes = 1;
  t.npus_per_node = 1;
  t.hbms_per_npu = 1;
  t.sids_per_hbm = 1;
  t.channels_per_sid = 1;
  t.pseudo_channels_per_channel = 1;
  t.bank_groups_per_pseudo_channel = 1;
  t.banks_per_bank_group = 1;
  t.rows_per_bank = 256;
  t.cols_per_bank = 2;
  const AddressCodec codec(t);
  EXPECT_NO_THROW(codec.Unpack(511));
  EXPECT_THROW(codec.Unpack(512), ContractViolation);
}

TEST(AddressCodec, EntityKeysNestProperly) {
  const TopologyConfig t;
  const AddressCodec codec(t);
  Rng rng(102);
  for (int i = 0; i < 500; ++i) {
    DeviceAddress a = RandomAddress(t, rng);
    DeviceAddress b = a;
    b.col = (a.col + 1) % t.cols_per_bank;
    // Same row, different column -> same entity at every level.
    for (Level level : kAllLevels) {
      EXPECT_EQ(codec.EntityKey(a, level), codec.EntityKey(b, level));
    }
    DeviceAddress c = a;
    c.row = (a.row + 1) % t.rows_per_bank;
    // Different row, same bank: row keys differ, bank key equal.
    EXPECT_NE(codec.EntityKey(a, Level::kRow), codec.EntityKey(c, Level::kRow));
    EXPECT_EQ(codec.BankKey(a), codec.BankKey(c));
  }
}

TEST(AddressCodec, DifferentBanksDifferentKeys) {
  const TopologyConfig t;
  const AddressCodec codec(t);
  Rng rng(103);
  std::set<std::uint64_t> keys;
  DeviceAddress a;
  for (std::uint32_t bank = 0; bank < t.banks_per_bank_group; ++bank) {
    a.bank = bank;
    keys.insert(codec.BankKey(a));
  }
  EXPECT_EQ(keys.size(), t.banks_per_bank_group);
}

TEST(AddressCodec, EntityCountsMatchTopology) {
  const TopologyConfig t;
  const AddressCodec codec(t);
  EXPECT_EQ(codec.EntityCount(Level::kNpu), t.TotalNpus());
  EXPECT_EQ(codec.EntityCount(Level::kHbm), t.TotalHbms());
  EXPECT_EQ(codec.EntityCount(Level::kSid), t.TotalHbms() * t.sids_per_hbm);
  EXPECT_EQ(codec.EntityCount(Level::kBank), t.TotalBanks());
  EXPECT_EQ(codec.EntityCount(Level::kRow), t.TotalBanks() * t.rows_per_bank);
}

TEST(AddressCodec, EntityKeyIsDenseUpperBound) {
  const TopologyConfig t;
  const AddressCodec codec(t);
  Rng rng(104);
  for (int i = 0; i < 500; ++i) {
    const DeviceAddress a = RandomAddress(t, rng);
    for (Level level : kAllLevels) {
      EXPECT_LT(codec.EntityKey(a, level), codec.EntityCount(level));
    }
  }
}

TEST(AddressCodec, MaxRadixAddressRoundTripsAndKeysStayDense) {
  const TopologyConfig t;
  const AddressCodec codec(t);
  // Every coordinate at its extreme simultaneously: the densest key the
  // mixed-radix packing can produce.
  DeviceAddress a;
  a.node = t.nodes - 1;
  a.npu = t.npus_per_node - 1;
  a.hbm = t.hbms_per_npu - 1;
  a.sid = t.sids_per_hbm - 1;
  a.channel = t.channels_per_sid - 1;
  a.pseudo_channel = t.pseudo_channels_per_channel - 1;
  a.bank_group = t.bank_groups_per_pseudo_channel - 1;
  a.bank = t.banks_per_bank_group - 1;
  a.row = t.rows_per_bank - 1;
  a.col = t.cols_per_bank - 1;
  EXPECT_TRUE(codec.IsValid(a));
  const std::uint64_t key = codec.Pack(a);
  EXPECT_EQ(codec.Unpack(key), a);
  // The last valid address owns the last key of the space and the last
  // entity key at every level — no slack, no aliasing headroom.
  EXPECT_EQ(key, codec.EntityCount(Level::kRow) * t.cols_per_bank - 1);
  for (Level level : kAllLevels) {
    EXPECT_EQ(codec.EntityKey(a, level), codec.EntityCount(level) - 1);
  }
}

TEST(AddressCodec, OnePastBoundsIsRejectedOnEveryCoordinate) {
  const TopologyConfig t;
  const AddressCodec codec(t);
  const auto reject = [&](DeviceAddress a) {
    EXPECT_FALSE(codec.IsValid(a));
    EXPECT_THROW(codec.Pack(a), ContractViolation);
    EXPECT_THROW(codec.BankKey(a), ContractViolation);
  };
  DeviceAddress a;  // all-zero base is valid everywhere
  ASSERT_TRUE(codec.IsValid(a));
  {
    DeviceAddress bad = a;
    bad.node = t.nodes;
    reject(bad);
  }
  {
    DeviceAddress bad = a;
    bad.npu = t.npus_per_node;
    reject(bad);
  }
  {
    DeviceAddress bad = a;
    bad.hbm = t.hbms_per_npu;
    reject(bad);
  }
  {
    DeviceAddress bad = a;
    bad.sid = t.sids_per_hbm;
    reject(bad);
  }
  {
    DeviceAddress bad = a;
    bad.channel = t.channels_per_sid;
    reject(bad);
  }
  {
    DeviceAddress bad = a;
    bad.pseudo_channel = t.pseudo_channels_per_channel;
    reject(bad);
  }
  {
    DeviceAddress bad = a;
    bad.bank_group = t.bank_groups_per_pseudo_channel;
    reject(bad);
  }
  {
    DeviceAddress bad = a;
    bad.bank = t.banks_per_bank_group;
    reject(bad);
  }
  {
    DeviceAddress bad = a;
    bad.row = t.rows_per_bank;
    reject(bad);
  }
  {
    DeviceAddress bad = a;
    bad.col = t.cols_per_bank;
    reject(bad);
  }
}

TEST(DeviceAddress, ToStringContainsCoordinates) {
  DeviceAddress a;
  a.node = 3;
  a.row = 777;
  const std::string s = a.ToString();
  EXPECT_NE(s.find("node3"), std::string::npos);
  EXPECT_NE(s.find("row777"), std::string::npos);
}

TEST(DeviceAddress, OrderingIsLexicographic) {
  DeviceAddress a, b;
  b.col = 1;
  EXPECT_LT(a, b);
  DeviceAddress c;
  c.node = 1;
  EXPECT_LT(a, c);
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace cordial::hbm
