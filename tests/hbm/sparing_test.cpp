#include "hbm/sparing.hpp"

#include <gtest/gtest.h>

namespace cordial::hbm {
namespace {

TEST(SparingLedger, RowSparingIsIdempotent) {
  SparingLedger ledger;
  EXPECT_TRUE(ledger.TrySpareRow(1, 100));
  EXPECT_TRUE(ledger.TrySpareRow(1, 100));
  EXPECT_EQ(ledger.rows_spared(), 1u);
  EXPECT_TRUE(ledger.IsRowSpared(1, 100));
  EXPECT_FALSE(ledger.IsRowSpared(1, 101));
  EXPECT_FALSE(ledger.IsRowSpared(2, 100));
}

TEST(SparingLedger, RowBudgetIsPerBank) {
  SparingBudget budget;
  budget.rows_per_bank = 2;
  SparingLedger ledger(budget);
  EXPECT_TRUE(ledger.TrySpareRow(1, 1));
  EXPECT_TRUE(ledger.TrySpareRow(1, 2));
  EXPECT_FALSE(ledger.TrySpareRow(1, 3));  // bank 1 exhausted
  EXPECT_TRUE(ledger.TrySpareRow(2, 3));   // bank 2 unaffected
  // Re-sparing an existing row still succeeds after exhaustion.
  EXPECT_TRUE(ledger.TrySpareRow(1, 2));
  EXPECT_EQ(ledger.rows_spared(), 3u);
}

TEST(SparingLedger, BankSparing) {
  SparingLedger ledger;
  EXPECT_FALSE(ledger.IsBankSpared(7));
  EXPECT_TRUE(ledger.TrySpareBank(7));
  EXPECT_TRUE(ledger.TrySpareBank(7));  // idempotent
  EXPECT_EQ(ledger.banks_spared(), 1u);
  EXPECT_TRUE(ledger.IsBankSpared(7));
}

TEST(SparingLedger, BankSparingCanBeDisabled) {
  SparingBudget budget;
  budget.bank_sparing_available = false;
  SparingLedger ledger(budget);
  EXPECT_FALSE(ledger.TrySpareBank(7));
  EXPECT_EQ(ledger.banks_spared(), 0u);
}

TEST(SparingLedger, RowIsolationIncludesBankSpares) {
  SparingLedger ledger;
  ledger.TrySpareBank(3);
  ledger.TrySpareRow(4, 50);
  EXPECT_TRUE(ledger.IsRowIsolated(3, 12345));  // any row of a spared bank
  EXPECT_TRUE(ledger.IsRowIsolated(4, 50));
  EXPECT_FALSE(ledger.IsRowIsolated(4, 51));
}

TEST(SparingLedger, CostAccounting) {
  SparingBudget budget;
  budget.row_spare_cost = 1.0;
  budget.bank_spare_cost = 512.0;
  SparingLedger ledger(budget);
  ledger.TrySpareRow(1, 1);
  ledger.TrySpareRow(1, 2);
  ledger.TrySpareBank(9);
  EXPECT_DOUBLE_EQ(ledger.total_cost(), 2.0 + 512.0);
}

}  // namespace
}  // namespace cordial::hbm
