#include "hbm/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::hbm {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  TopologyConfig topology_;
  FootprintGenerator generator_{topology_};

  std::set<std::uint32_t> DistinctRows(const BankFaultPlan& plan) {
    std::set<std::uint32_t> rows;
    for (const RowErrors& r : plan.uer_rows) rows.insert(r.row);
    return rows;
  }
};

TEST_F(FaultTest, GenerateIsDeterministicGivenSeed) {
  for (PatternShape shape :
       {PatternShape::kSingleRowCluster, PatternShape::kScattered,
        PatternShape::kWholeColumn}) {
    Rng a(42), b(42);
    const BankFaultPlan pa = generator_.Generate(shape, a);
    const BankFaultPlan pb = generator_.Generate(shape, b);
    ASSERT_EQ(pa.uer_rows.size(), pb.uer_rows.size());
    for (std::size_t i = 0; i < pa.uer_rows.size(); ++i) {
      EXPECT_EQ(pa.uer_rows[i].row, pb.uer_rows[i].row);
      EXPECT_EQ(pa.uer_rows[i].cols, pb.uer_rows[i].cols);
    }
  }
}

TEST_F(FaultTest, AllRowsAndColsInBounds) {
  Rng rng(7);
  for (PatternShape shape :
       {PatternShape::kCeOnly, PatternShape::kSingleRowCluster,
        PatternShape::kDoubleRowCluster, PatternShape::kHalfTotalRowCluster,
        PatternShape::kScattered, PatternShape::kWholeColumn}) {
    for (int i = 0; i < 50; ++i) {
      const BankFaultPlan plan = generator_.Generate(shape, rng);
      for (const auto& rows : {plan.uer_rows, plan.ce_rows}) {
        for (const RowErrors& r : rows) {
          EXPECT_LT(r.row, topology_.rows_per_bank);
          ASSERT_FALSE(r.cols.empty());
          for (std::uint32_t col : r.cols) {
            EXPECT_LT(col, topology_.cols_per_bank);
          }
        }
      }
    }
  }
}

TEST_F(FaultTest, CeOnlyHasNoUerRows) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const BankFaultPlan plan = generator_.Generate(PatternShape::kCeOnly, rng);
    EXPECT_TRUE(plan.uer_rows.empty());
    EXPECT_EQ(plan.kind, FaultKind::kCellFault);
  }
}

TEST_F(FaultTest, SingleClusterIsNarrowBand) {
  Rng rng(9);
  const auto& p = generator_.params();
  for (int i = 0; i < 200; ++i) {
    const auto rows =
        DistinctRows(generator_.Generate(PatternShape::kSingleRowCluster, rng));
    ASSERT_GE(rows.size(), 2u);
    const std::uint32_t span = *rows.rbegin() - *rows.begin();
    // Span bounded by twice the max half-width plus adjacency slack.
    EXPECT_LE(span, 2 * p.single_halfwidth_max + 16);
  }
}

TEST_F(FaultTest, SingleClusterFollowsStrideGrid) {
  Rng rng(10);
  int grid_consistent = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    const BankFaultPlan plan =
        generator_.Generate(PatternShape::kSingleRowCluster, rng);
    const auto rows = DistinctRows(plan);
    // Count rows whose offset from the first failure is a multiple of some
    // stride in the configured range (allowing +/-1 jitter and +/-4
    // adjacency collateral).
    const std::uint32_t anchor = plan.uer_rows.front().row;
    for (std::uint32_t row : rows) {
      ++total;
      const auto dist = static_cast<std::int64_t>(row) -
                        static_cast<std::int64_t>(anchor);
      bool on_grid = false;
      for (int k = generator_.params().cluster_stride_log2_min;
           k <= generator_.params().cluster_stride_log2_max; ++k) {
        const std::int64_t stride = 1LL << k;
        const std::int64_t mod = ((dist % stride) + stride) % stride;
        if (mod <= 5 || stride - mod <= 5) {
          on_grid = true;
          break;
        }
      }
      grid_consistent += on_grid;
    }
  }
  // The vast majority of rows sit on (or within jitter+adjacency of) a
  // stride grid anchored at the first failure.
  EXPECT_GT(static_cast<double>(grid_consistent) / total, 0.9);
}

TEST_F(FaultTest, DoubleClusterHasTwoGroupsWithPowerOfTwoGap) {
  Rng rng(11);
  int two_groups = 0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    const auto rows = DistinctRows(
        generator_.Generate(PatternShape::kDoubleRowCluster, rng));
    // Split at the largest gap; both sides should be tight clusters.
    std::vector<std::uint32_t> sorted(rows.begin(), rows.end());
    if (sorted.size() < 2) continue;
    std::size_t split = 0;
    std::uint32_t best_gap = 0;
    for (std::size_t j = 1; j < sorted.size(); ++j) {
      if (sorted[j] - sorted[j - 1] > best_gap) {
        best_gap = sorted[j] - sorted[j - 1];
        split = j;
      }
    }
    if (best_gap < 64) continue;  // both clusters collapsed together
    const std::uint32_t left_span = sorted[split - 1] - sorted.front();
    const std::uint32_t right_span = sorted.back() - sorted[split];
    if (left_span <= 64 && right_span <= 64) ++two_groups;
  }
  EXPECT_GT(two_groups, kTrials * 5 / 10);
}

TEST_F(FaultTest, HalfTotalClusterAliasesAtHalfBank) {
  Rng rng(12);
  int aliased = 0;
  constexpr int kTrials = 100;
  for (int i = 0; i < kTrials; ++i) {
    const auto rows = DistinctRows(
        generator_.Generate(PatternShape::kHalfTotalRowCluster, rng));
    const std::uint32_t half = topology_.rows_per_bank / 2;
    // Some pair should be ~half a bank apart.
    bool found = false;
    for (std::uint32_t a : rows) {
      for (std::uint32_t b : rows) {
        if (b <= a) continue;
        const std::uint32_t gap = b - a;
        if (gap + 512 >= half && gap <= half + 512) found = true;
      }
    }
    aliased += found;
  }
  EXPECT_GT(aliased, kTrials * 8 / 10);
}

TEST_F(FaultTest, ScatteredSpansTheBank) {
  Rng rng(13);
  double avg_span = 0.0;
  constexpr int kTrials = 100;
  for (int i = 0; i < kTrials; ++i) {
    const auto rows =
        DistinctRows(generator_.Generate(PatternShape::kScattered, rng));
    ASSERT_GE(rows.size(), 4u);
    avg_span += static_cast<double>(*rows.rbegin() - *rows.begin());
  }
  avg_span /= kTrials;
  // Uniform rows span most of the bank on average.
  EXPECT_GT(avg_span, topology_.rows_per_bank * 0.5);
}

TEST_F(FaultTest, WholeColumnUsesOneColumnAcrossManyRows) {
  Rng rng(14);
  for (int i = 0; i < 50; ++i) {
    const BankFaultPlan plan =
        generator_.Generate(PatternShape::kWholeColumn, rng);
    ASSERT_GE(plan.uer_rows.size(), 10u);
    std::set<std::uint32_t> cols;
    for (const RowErrors& r : plan.uer_rows) {
      cols.insert(r.cols.begin(), r.cols.end());
    }
    EXPECT_EQ(cols.size(), 1u);
  }
}

TEST_F(FaultTest, ScatteredAndColumnGetMoreAmbientCes) {
  Rng rng(15);
  double single_ces = 0.0, scattered_ces = 0.0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    single_ces += static_cast<double>(
        generator_.Generate(PatternShape::kSingleRowCluster, rng).ce_rows.size());
    scattered_ces += static_cast<double>(
        generator_.Generate(PatternShape::kScattered, rng).ce_rows.size());
  }
  EXPECT_GT(scattered_ces, single_ces * 2);
}

TEST(Fault, CollapseToClassMatchesPaperTaxonomy) {
  EXPECT_EQ(CollapseToClass(PatternShape::kSingleRowCluster),
            FailureClass::kSingleRowClustering);
  EXPECT_EQ(CollapseToClass(PatternShape::kDoubleRowCluster),
            FailureClass::kDoubleRowClustering);
  EXPECT_EQ(CollapseToClass(PatternShape::kHalfTotalRowCluster),
            FailureClass::kDoubleRowClustering);
  EXPECT_EQ(CollapseToClass(PatternShape::kScattered),
            FailureClass::kScattered);
  EXPECT_EQ(CollapseToClass(PatternShape::kWholeColumn),
            FailureClass::kScattered);
  EXPECT_EQ(CollapseToClass(PatternShape::kCeOnly), std::nullopt);
}

TEST(Fault, RootCausesArephysicallyConsistent) {
  EXPECT_EQ(RootCauseOf(PatternShape::kSingleRowCluster), FaultKind::kSwdFault);
  EXPECT_EQ(RootCauseOf(PatternShape::kDoubleRowCluster),
            FaultKind::kSenseAmpFault);
  EXPECT_EQ(RootCauseOf(PatternShape::kHalfTotalRowCluster),
            FaultKind::kDieCrack);
  EXPECT_EQ(RootCauseOf(PatternShape::kScattered), FaultKind::kTsvFault);
  EXPECT_EQ(RootCauseOf(PatternShape::kWholeColumn),
            FaultKind::kColumnDriverFault);
}

TEST(Fault, NamesAreStable) {
  EXPECT_STREQ(PatternShapeName(PatternShape::kSingleRowCluster),
               "single-row-cluster");
  EXPECT_STREQ(FailureClassName(FailureClass::kScattered), "Scattered Pattern");
  EXPECT_STREQ(FaultKindName(FaultKind::kTsvFault), "tsv");
}

TEST(Fault, GeneratorRejectsTinyBanks) {
  TopologyConfig t;
  t.rows_per_bank = 128;
  EXPECT_THROW(FootprintGenerator generator(t), ContractViolation);
}

}  // namespace
}  // namespace cordial::hbm
