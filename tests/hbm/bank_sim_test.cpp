#include "hbm/bank_sim.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::hbm {
namespace {

class BankSimTest : public ::testing::Test {
 protected:
  TopologyConfig topology_;
  BankSimulator sim_{topology_, PatrolScrubber(100.0, 0.0)};
};

TEST_F(BankSimTest, CleanReadsReturnGoldenData) {
  for (std::uint32_t row : {0u, 5u, 32767u}) {
    const auto result = sim_.Read(row, 3, 1.0);
    EXPECT_TRUE(result.data_correct);
    EXPECT_EQ(result.data, BankSimulator::GoldenData(row, 3));
    EXPECT_FALSE(result.finding.has_value());
  }
  EXPECT_EQ(sim_.silent_corruptions(), 0u);
}

TEST_F(BankSimTest, GoldenDataVariesByAddress) {
  EXPECT_NE(BankSimulator::GoldenData(1, 2), BankSimulator::GoldenData(2, 1));
  EXPECT_NE(BankSimulator::GoldenData(0, 0), BankSimulator::GoldenData(0, 1));
  EXPECT_EQ(BankSimulator::GoldenData(7, 9), BankSimulator::GoldenData(7, 9));
}

TEST_F(BankSimTest, SingleStuckBitIsCorrectedAndLoggedAsCe) {
  sim_.InjectStuckBit(100, 4, 17, 10.0);
  const auto result = sim_.Read(100, 4, 20.0);
  EXPECT_TRUE(result.data_correct);  // ECC corrected it
  ASSERT_TRUE(result.finding.has_value());
  EXPECT_EQ(result.finding->type, ErrorType::kCe);
  EXPECT_EQ(result.finding->row, 100u);
}

TEST_F(BankSimTest, FaultNotActiveBeforeOnset) {
  sim_.InjectStuckBit(100, 4, 17, 50.0);
  EXPECT_EQ(sim_.FaultyBits(100, 4, 49.0), 0);
  EXPECT_EQ(sim_.FaultyBits(100, 4, 50.0), 1);
  const auto early = sim_.Read(100, 4, 10.0);
  EXPECT_FALSE(early.finding.has_value());
}

TEST_F(BankSimTest, DoubleStuckBitsBecomeUerOnDemandRead) {
  sim_.InjectStuckBit(200, 1, 3, 5.0);
  sim_.InjectStuckBit(200, 1, 40, 6.0);
  const auto result = sim_.Read(200, 1, 10.0);
  ASSERT_TRUE(result.finding.has_value());
  EXPECT_EQ(result.finding->type, ErrorType::kUer);
}

TEST_F(BankSimTest, ScrubReportsCeThenUeoAsWordDegrades) {
  sim_.InjectStuckBit(300, 2, 10, 5.0);
  auto first = sim_.Scrub(100.0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].type, ErrorType::kCe);

  // Unchanged word: not re-reported.
  EXPECT_TRUE(sim_.Scrub(200.0).empty());

  // Second bit arrives; next sweep reports a UEO.
  sim_.InjectStuckBit(300, 2, 11, 250.0);
  auto second = sim_.Scrub(300.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].type, ErrorType::kUeo);
}

TEST_F(BankSimTest, ScrubBeforeOnsetSeesNothing) {
  sim_.InjectStuckBit(300, 2, 10, 500.0);
  EXPECT_TRUE(sim_.Scrub(100.0).empty());
}

TEST_F(BankSimTest, UeoVsUerIsExactlyTheScrubRace) {
  // Fault at t=10; scrub period 100 with sweeps at 0, 100, 200...
  // A demand access at t=50 (delay 40) beats the t=100 sweep -> UER path.
  EXPECT_FALSE(sim_.ScrubWinsRace(10.0, 40.0));
  // An access at t=150 (delay 140) loses to the sweep -> UEO path.
  EXPECT_TRUE(sim_.ScrubWinsRace(10.0, 140.0));
}

TEST_F(BankSimTest, DuplicateInjectionIsIdempotent) {
  sim_.InjectStuckBit(10, 0, 5, 20.0);
  sim_.InjectStuckBit(10, 0, 5, 30.0);  // same bit, later onset
  EXPECT_EQ(sim_.FaultyBits(10, 0, 25.0), 1);
  // Earliest onset wins.
  sim_.InjectStuckBit(10, 0, 5, 1.0);
  EXPECT_EQ(sim_.FaultyBits(10, 0, 2.0), 1);
}

TEST_F(BankSimTest, TripleBitFaultsEitherDetectOrCountSilent) {
  Rng rng(9);
  std::uint64_t detected = 0;
  BankSimulator sim(topology_);
  for (std::uint32_t col = 0; col < 100; ++col) {
    for (std::size_t b : rng.SampleWithoutReplacement(72, 3)) {
      sim.InjectStuckBit(500, col, static_cast<int>(b), 1.0);
    }
    const auto result = sim.Read(500, col, 2.0);
    if (result.finding.has_value()) {
      ++detected;
      EXPECT_EQ(result.finding->type, ErrorType::kUer);
    }
  }
  // Every word is either detected or counted as a silent corruption.
  EXPECT_EQ(detected + sim.silent_corruptions(), 100u);
  // SEC-DED sees odd parity and "corrects" one bit, which for three flips
  // is usually a miscorrection: silent corruption dominates — precisely the
  // paper's argument that plain ECC cannot contain multi-bit SWD faults.
  EXPECT_GT(sim.silent_corruptions(), 50u);
  EXPECT_GT(detected, 5u);
}

TEST_F(BankSimTest, RejectsOutOfRangeInputs) {
  EXPECT_THROW(sim_.InjectStuckBit(topology_.rows_per_bank, 0, 0, 0.0),
               ContractViolation);
  EXPECT_THROW(sim_.InjectStuckBit(0, topology_.cols_per_bank, 0, 0.0),
               ContractViolation);
  EXPECT_THROW(sim_.InjectStuckBit(0, 0, 72, 0.0), ContractViolation);
  EXPECT_THROW(sim_.InjectStuckBit(0, 0, 0, -1.0), ContractViolation);
  EXPECT_THROW(sim_.Read(topology_.rows_per_bank, 0, 0.0), ContractViolation);
}

TEST_F(BankSimTest, FaultyWordsTracksDistinctWords) {
  sim_.InjectStuckBit(1, 1, 0, 0.0);
  sim_.InjectStuckBit(1, 1, 1, 0.0);
  sim_.InjectStuckBit(2, 2, 0, 0.0);
  EXPECT_EQ(sim_.faulty_words(), 2u);
}

}  // namespace
}  // namespace cordial::hbm
