#include "hbm/error_map.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace cordial::hbm {
namespace {

TEST(BankErrorMap, RejectsOutOfRangePoints) {
  TopologyConfig t;
  BankErrorMap map(t);
  EXPECT_THROW(map.Add(t.rows_per_bank, 0, ErrorType::kCe), ContractViolation);
  EXPECT_THROW(map.Add(0, t.cols_per_bank, ErrorType::kCe), ContractViolation);
}

TEST(BankErrorMap, CountsAndRowsByType) {
  TopologyConfig t;
  BankErrorMap map(t);
  map.Add(10, 1, ErrorType::kCe);
  map.Add(10, 2, ErrorType::kCe);
  map.Add(20, 3, ErrorType::kUer);
  map.Add(30, 4, ErrorType::kUeo);
  EXPECT_EQ(map.total_errors(), 4u);
  EXPECT_EQ(map.RowsWithType(ErrorType::kCe),
            (std::vector<std::uint32_t>{10}));
  EXPECT_EQ(map.RowsWithType(ErrorType::kUer),
            (std::vector<std::uint32_t>{20}));
  EXPECT_EQ(map.RowsWithType(ErrorType::kUeo),
            (std::vector<std::uint32_t>{30}));
}

TEST(BankErrorMap, RenderUsesSeverityGlyphs) {
  TopologyConfig t;
  BankErrorMap map(t);
  map.Add(0, 0, ErrorType::kCe);
  map.Add(t.rows_per_bank - 1, t.cols_per_bank - 1, ErrorType::kUer);
  const std::string art = map.Render(8, 16);
  EXPECT_NE(art.find('c'), std::string::npos);
  EXPECT_NE(art.find('X'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(BankErrorMap, UerDominatesTileSeverity) {
  TopologyConfig t;
  BankErrorMap map(t);
  // Same tile: CE then UER -> tile renders as UER.
  map.Add(0, 0, ErrorType::kCe);
  map.Add(1, 1, ErrorType::kUer);
  const std::string art = map.Render(1, 1);
  // Skip the header line; inspect the single grid tile.
  const std::string grid = art.substr(art.find('\n') + 1);
  EXPECT_NE(grid.find('X'), std::string::npos);
  EXPECT_EQ(grid.find('c'), std::string::npos);
}

TEST(BankErrorMap, RenderSizeMatchesRequest) {
  TopologyConfig t;
  BankErrorMap map(t);
  const std::string art = map.Render(4, 10);
  int lines = 0;
  std::istringstream in(art);
  std::string line;
  std::getline(in, line);  // header line
  while (std::getline(in, line)) {
    EXPECT_EQ(line.size(), 12u);  // two-space indent + 10 glyphs
    ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(BankErrorMap, RejectsZeroRenderSize) {
  TopologyConfig t;
  BankErrorMap map(t);
  EXPECT_THROW(map.Render(0, 8), ContractViolation);
}

TEST(BankErrorMap, ExportCsvHasHeaderAndRows) {
  TopologyConfig t;
  BankErrorMap map(t);
  map.Add(5, 6, ErrorType::kUeo);
  const std::string csv = map.ExportCsv();
  EXPECT_EQ(csv.rfind("row,col,type\n", 0), 0u);
  EXPECT_NE(csv.find("5,6,UEO"), std::string::npos);
}

}  // namespace
}  // namespace cordial::hbm
