#include "hbm/scrub.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace cordial::hbm {
namespace {

TEST(PatrolScrubber, NextSweepMath) {
  PatrolScrubber scrubber(100.0, 10.0);
  EXPECT_DOUBLE_EQ(scrubber.NextSweepAfter(0.0), 10.0);
  EXPECT_DOUBLE_EQ(scrubber.NextSweepAfter(10.0), 10.0);
  EXPECT_DOUBLE_EQ(scrubber.NextSweepAfter(10.5), 110.0);
  EXPECT_DOUBLE_EQ(scrubber.NextSweepAfter(110.0), 110.0);
  EXPECT_DOUBLE_EQ(scrubber.NextSweepAfter(250.0), 310.0);
}

TEST(PatrolScrubber, ZeroPhaseDefaults) {
  PatrolScrubber scrubber(24.0 * 3600.0);
  EXPECT_DOUBLE_EQ(scrubber.NextSweepAfter(0.0), 0.0);
  EXPECT_DOUBLE_EQ(scrubber.NextSweepAfter(1.0), 24.0 * 3600.0);
}

TEST(PatrolScrubber, RaceSemantics) {
  PatrolScrubber scrubber(100.0, 0.0);
  // Fault at t=10: next sweep at t=100. Access 50s later (t=60) wins.
  EXPECT_FALSE(scrubber.ScrubWinsRace(10.0, 50.0));
  // Access 200s later (t=210): the t=100 sweep found it first.
  EXPECT_TRUE(scrubber.ScrubWinsRace(10.0, 200.0));
}

TEST(PatrolScrubber, RejectsBadConfig) {
  EXPECT_THROW(PatrolScrubber(0.0), ContractViolation);
  EXPECT_THROW(PatrolScrubber(10.0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace cordial::hbm
