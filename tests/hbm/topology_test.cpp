#include "hbm/topology.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace cordial::hbm {
namespace {

TEST(Topology, DefaultMatchesPaperPlatform) {
  TopologyConfig t;
  t.Validate();
  // Paper platform: >10,000 NPUs, >80,000 HBMs (§I, §V-A).
  EXPECT_GT(t.TotalNpus(), 10000u);
  EXPECT_GT(t.TotalHbms(), 80000u);
  EXPECT_EQ(t.TotalHbms(), t.TotalNpus() * t.hbms_per_npu);
}

TEST(Topology, HierarchyCountsMultiplyOut) {
  TopologyConfig t;
  EXPECT_EQ(t.ChannelsPerHbm(), 8u);          // 8 channels per stack
  EXPECT_EQ(t.PseudoChannelsPerHbm(), 16u);   // x2 pseudo-channels
  EXPECT_EQ(t.BankGroupsPerHbm(), 64u);       // x4 bank groups
  EXPECT_EQ(t.BanksPerHbm(), 256u);           // x4 banks
  EXPECT_EQ(t.TotalBanks(), t.TotalHbms() * 256u);
}

TEST(Topology, ValidateRejectsZeroDimensions) {
  TopologyConfig t;
  t.rows_per_bank = 0;
  EXPECT_THROW(t.Validate(), ContractViolation);

  TopologyConfig t2;
  t2.nodes = 0;
  EXPECT_THROW(t2.Validate(), ContractViolation);

  TopologyConfig t3;
  t3.banks_per_bank_group = 0;
  EXPECT_THROW(t3.Validate(), ContractViolation);
}

TEST(Topology, ValidateRejectsAddressSpaceOverflow) {
  TopologyConfig t;
  t.nodes = 4000000000u;
  t.rows_per_bank = 4000000000u;
  EXPECT_THROW(t.Validate(), ContractViolation);
}

TEST(Topology, LevelNamesMatchPaperTables) {
  EXPECT_STREQ(LevelName(Level::kNpu), "NPU");
  EXPECT_STREQ(LevelName(Level::kHbm), "HBM");
  EXPECT_STREQ(LevelName(Level::kSid), "SID");
  EXPECT_STREQ(LevelName(Level::kPseudoChannel), "PS-CH");
  EXPECT_STREQ(LevelName(Level::kBankGroup), "BG");
  EXPECT_STREQ(LevelName(Level::kBank), "Bank");
  EXPECT_STREQ(LevelName(Level::kRow), "Row");
}

TEST(Topology, AllLevelsOrderedCoarseToFine) {
  ASSERT_EQ(std::size(kAllLevels), 7u);
  EXPECT_EQ(kAllLevels[0], Level::kNpu);
  EXPECT_EQ(kAllLevels[6], Level::kRow);
}

TEST(Topology, ToStringMentionsKeyCounts) {
  TopologyConfig t;
  const std::string s = t.ToString();
  EXPECT_NE(s.find("total_npus=10240"), std::string::npos);
  EXPECT_NE(s.find("total_hbms=81920"), std::string::npos);
}

}  // namespace
}  // namespace cordial::hbm
