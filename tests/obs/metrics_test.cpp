// The metrics layer's load-bearing properties: lock-free accumulation is
// lossless under contention, per-shard snapshot merging is a commutative
// monoid (so any scrape-side merge order yields one truth), and the
// Prometheus exposition is byte-stable for equal snapshots.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::obs {
namespace {

TEST(ObsMetrics, CounterAndGaugeBasics) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("cordial_test_total", "help");
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);

  Gauge& gauge = registry.GetGauge("cordial_test_depth", "help");
  gauge.Set(7);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 4);

  // Same (name, labels) resolves to the same instance; labels distinguish.
  EXPECT_EQ(&registry.GetCounter("cordial_test_total", "help"), &counter);
  Counter& labelled = registry.GetCounter("cordial_test_total", "help",
                                          {{"shard", "0"}});
  EXPECT_NE(&labelled, &counter);
}

TEST(ObsMetrics, RegistryRejectsKindMismatchAndBadNames) {
  MetricRegistry registry;
  registry.GetCounter("cordial_test_total", "help");
  EXPECT_THROW(registry.GetGauge("cordial_test_total", "help"),
               ContractViolation);
  EXPECT_THROW(registry.GetCounter("0starts_with_digit", "help"),
               ContractViolation);
  EXPECT_THROW(registry.GetCounter("has-dash", "help"), ContractViolation);
  registry.GetHistogram("cordial_test_seconds", "help", {0.5, 1.0});
  EXPECT_THROW(registry.GetHistogram("cordial_test_seconds", "help", {1.0}),
               ContractViolation);
  EXPECT_THROW(Histogram({1.0, 0.5}), ContractViolation);
}

TEST(ObsMetrics, HistogramBucketsHonourLeSemantics) {
  Histogram histogram({0.25, 1.0});
  histogram.Observe(0.125);  // <= 0.25
  histogram.Observe(0.25);   // == bound, still le 0.25
  histogram.Observe(0.5);    // <= 1.0
  histogram.Observe(2.0);    // +Inf
  const HistogramData data = histogram.Snapshot();
  EXPECT_EQ(data.buckets, (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(data.count, 4u);
  EXPECT_DOUBLE_EQ(data.sum, 2.875);
}

TEST(ObsMetrics, ConcurrentAccumulationIsLossless) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("cordial_test_total", "help");
  Histogram& histogram = registry.GetHistogram("cordial_test_seconds", "help",
                                               DefaultLatencyBuckets());
  Gauge& gauge = registry.GetGauge("cordial_test_depth", "help");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        histogram.Observe(0.0009765625);  // 2^-10: sums stay exact
        gauge.Set(t);
        if (i % 64 == 0) registry.Snapshot();  // scrape under fire
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const HistogramData data = histogram.Snapshot();
  EXPECT_EQ(data.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(data.sum, kThreads * kPerThread * 0.0009765625);
}

/// One randomized per-shard snapshot: a shared unlabelled counter (merge
/// sums it), a per-shard labelled counter (merge concatenates), a gauge and
/// a histogram over shared bounds. Dyadic observations keep double sums
/// exact, so merge equality is bit-exact in every association order.
RegistrySnapshot RandomShardSnapshot(Rng& rng, int shard) {
  MetricRegistry registry;
  registry.GetCounter("cordial_prop_shared_total", "help")
      .Increment(rng.UniformU64(1000));
  registry
      .GetCounter("cordial_prop_sharded_total", "help",
                  {{"shard", std::to_string(shard)}})
      .Increment(rng.UniformU64(1000));
  Gauge& gauge = registry.GetGauge("cordial_prop_depth", "help");
  gauge.Set(static_cast<std::int64_t>(rng.UniformU64(64)));
  Histogram& histogram =
      registry.GetHistogram("cordial_prop_seconds", "help", {0.25, 1.0, 4.0});
  const std::size_t observations = rng.UniformU64(40);
  for (std::size_t i = 0; i < observations; ++i) {
    histogram.Observe(static_cast<double>(rng.UniformU64(64)) * 0.125);
  }
  return registry.Snapshot();
}

TEST(ObsMetrics, MergeIsAssociativeAndCommutative) {
  Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    const RegistrySnapshot a = RandomShardSnapshot(rng, 0);
    const RegistrySnapshot b = RandomShardSnapshot(rng, 1);
    const RegistrySnapshot c = RandomShardSnapshot(rng, 2);
    const RegistrySnapshot d = RandomShardSnapshot(rng, 3);

    const RegistrySnapshot flat = MergeSnapshots({a, b, c, d});
    const RegistrySnapshot left =
        MergeSnapshots({MergeSnapshots({a, b}), MergeSnapshots({c, d})});
    const RegistrySnapshot right =
        MergeSnapshots({a, MergeSnapshots({b, MergeSnapshots({c, d})})});
    const RegistrySnapshot shuffled = MergeSnapshots({d, b, c, a});

    EXPECT_EQ(flat, left);
    EXPECT_EQ(flat, right);
    EXPECT_EQ(flat, shuffled);
    // Identity: merging with an empty snapshot changes nothing.
    EXPECT_EQ(flat, MergeSnapshots({flat, RegistrySnapshot{}}));
  }
}

TEST(ObsMetrics, MergeRejectsMismatchedSchemas) {
  MetricRegistry counter_registry;
  counter_registry.GetCounter("cordial_prop_x", "help");
  MetricRegistry gauge_registry;
  gauge_registry.GetGauge("cordial_prop_x", "help");
  EXPECT_THROW(MergeSnapshots(
                   {counter_registry.Snapshot(), gauge_registry.Snapshot()}),
               ContractViolation);

  MetricRegistry h1, h2;
  h1.GetHistogram("cordial_prop_seconds", "help", {0.5});
  h2.GetHistogram("cordial_prop_seconds", "help", {0.25});
  EXPECT_THROW(MergeSnapshots({h1.Snapshot(), h2.Snapshot()}),
               ContractViolation);
}

TEST(ObsMetrics, PrometheusExpositionGolden) {
  MetricRegistry registry;
  registry
      .GetCounter("cordial_demo_requests_total", "Requests handled",
                  {{"shard", "1"}})
      .Increment(4);
  registry
      .GetCounter("cordial_demo_requests_total", "Requests handled",
                  {{"shard", "0"}})
      .Increment(3);
  registry.GetGauge("cordial_demo_queue_depth", "Queue depth").Set(2);
  Histogram& histogram = registry.GetHistogram("cordial_demo_latency_seconds",
                                               "Latency", {0.25, 1.0});
  histogram.Observe(0.125);
  histogram.Observe(0.5);
  histogram.Observe(3.0);

  const std::string expected =
      "# HELP cordial_demo_latency_seconds Latency\n"
      "# TYPE cordial_demo_latency_seconds histogram\n"
      "cordial_demo_latency_seconds_bucket{le=\"0.25\"} 1\n"
      "cordial_demo_latency_seconds_bucket{le=\"1\"} 2\n"
      "cordial_demo_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "cordial_demo_latency_seconds_sum 3.625\n"
      "cordial_demo_latency_seconds_count 3\n"
      "# HELP cordial_demo_queue_depth Queue depth\n"
      "# TYPE cordial_demo_queue_depth gauge\n"
      "cordial_demo_queue_depth 2\n"
      "# HELP cordial_demo_requests_total Requests handled\n"
      "# TYPE cordial_demo_requests_total counter\n"
      "cordial_demo_requests_total{shard=\"0\"} 3\n"
      "cordial_demo_requests_total{shard=\"1\"} 4\n";
  EXPECT_EQ(RenderPrometheus(registry.Snapshot()), expected);
  // Stable: rendering the same state twice is byte-identical.
  EXPECT_EQ(RenderPrometheus(registry.Snapshot()),
            RenderPrometheus(registry.Snapshot()));
}

TEST(ObsMetrics, SampleLookupHelpers) {
  MetricRegistry shard0, shard1;
  shard0.GetCounter("cordial_x_total", "help", {{"shard", "0"}}).Increment(5);
  shard1.GetCounter("cordial_x_total", "help", {{"shard", "1"}}).Increment(7);
  shard0.GetGauge("cordial_x_depth", "help", {{"shard", "0"}}).Set(3);
  shard1.GetGauge("cordial_x_depth", "help", {{"shard", "1"}}).Set(4);
  const RegistrySnapshot merged =
      MergeSnapshots({shard0.Snapshot(), shard1.Snapshot()});
  EXPECT_EQ(SumCounterSamples(merged, "cordial_x_total"), 12u);
  EXPECT_EQ(SumGaugeSamples(merged, "cordial_x_depth"), 7);
  const MetricSample* sample =
      FindSample(merged, "cordial_x_total", {{"shard", "1"}});
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->counter_value, 7u);
  EXPECT_EQ(FindSample(merged, "cordial_x_total", {{"shard", "9"}}), nullptr);
}

}  // namespace
}  // namespace cordial::obs
