// End-to-end exercise of the admin plane over real sockets: an AdminServer
// on an ephemeral loopback port must answer /healthz and /metrics to a
// plain HTTP/1.1 client, 404 unknown paths, refuse non-GET methods, and
// convert handler exceptions into 500s instead of dying.
#include "obs/admin_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace cordial::obs {
namespace {

/// Minimal blocking HTTP client: one request, read to EOF, full response.
std::string HttpRequest(std::uint16_t port, const std::string& raw_request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  EXPECT_EQ(::send(fd, raw_request.data(), raw_request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(raw_request.size()));
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(std::uint16_t port, const std::string& path) {
  return HttpRequest(port, "GET " + path +
                               " HTTP/1.1\r\nHost: localhost\r\n"
                               "Connection: close\r\n\r\n");
}

TEST(ObsAdminServer, ServesHealthzOnEphemeralPort) {
  AdminServer server;  // port 0: kernel picks
  server.Start();
  ASSERT_NE(server.port(), 0);
  const std::string response = HttpGet(server.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nok\n"), std::string::npos);
  server.Stop();
  server.Stop();  // idempotent
}

TEST(ObsAdminServer, ServesMetricsEndToEnd) {
  MetricRegistry registry;
  registry.GetCounter("cordial_admin_test_total", "help").Increment(9);
  AdminServer server;
  server.AddHandler("/metrics", "text/plain; version=0.0.4; charset=utf-8",
                    [&] { return RenderPrometheus(registry.Snapshot()); });
  server.Start();
  const std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("# TYPE cordial_admin_test_total counter"),
            std::string::npos);
  EXPECT_NE(response.find("cordial_admin_test_total 9"), std::string::npos);

  // The handler sees live state, not a registration-time copy.
  registry.GetCounter("cordial_admin_test_total", "help").Increment();
  EXPECT_NE(HttpGet(server.port(), "/metrics")
                .find("cordial_admin_test_total 10"),
            std::string::npos);
  server.Stop();
}

TEST(ObsAdminServer, UnknownPathsAndMethodsAreRejected) {
  AdminServer server;
  server.Start();
  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_NE(missing.find("/healthz"), std::string::npos);  // lists routes
  const std::string post = HttpRequest(
      server.port(),
      "POST /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
  server.Stop();
}

TEST(ObsAdminServer, PostRoutesRejectGetAndRunOnPost) {
  int hits = 0;
  AdminServer server;
  server.AddHandler(
      "/mutate", "text/plain",
      [&] {
        ++hits;
        return std::string("mutated\n");
      },
      AdminServer::Method::kPost);
  server.Start();

  // A GET must not trigger the side effect — scrapes and crawlers send GETs.
  const std::string get = HttpGet(server.port(), "/mutate");
  EXPECT_NE(get.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_NE(get.find("requires POST"), std::string::npos);
  EXPECT_EQ(hits, 0);

  const std::string post = HttpRequest(
      server.port(),
      "POST /mutate HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(post.find("mutated"), std::string::npos);
  EXPECT_EQ(hits, 1);
  server.Stop();
}

TEST(ObsAdminServer, HandlerExceptionsBecome500) {
  AdminServer server;
  server.AddHandler("/boom", "text/plain", []() -> std::string {
    throw std::runtime_error("kaput");
  });
  server.Start();
  const std::string response = HttpGet(server.port(), "/boom");
  EXPECT_NE(response.find("HTTP/1.1 500"), std::string::npos);
  EXPECT_NE(response.find("kaput"), std::string::npos);
  // The server survives the throwing handler.
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("200 OK"),
            std::string::npos);
  server.Stop();
}

TEST(ObsAdminServer, QueryStringsAreStripped) {
  AdminServer server;
  server.Start();
  EXPECT_NE(HttpGet(server.port(), "/healthz?verbose=1").find("200 OK"),
            std::string::npos);
  server.Stop();
}

TEST(ObsAdminServer, SlowClientSendingRequestInTinyChunksIsServed) {
  // ReadRequestHead must keep recv'ing until the header terminator arrives;
  // a client that dribbles the request a few bytes at a time used to risk a
  // short read being treated as the whole request.
  AdminServer server;
  server.Start();
  const std::string request =
      "GET /healthz HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  for (std::size_t i = 0; i < request.size(); i += 5) {
    const std::size_t chunk = std::min<std::size_t>(5, request.size() - i);
    ASSERT_EQ(::send(fd, request.data() + i, chunk, MSG_NOSIGNAL),
              static_cast<ssize_t>(chunk));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nok\n"), std::string::npos);
  server.Stop();
}

TEST(ObsAdminServer, SignalStormDoesNotTruncateResponses) {
  // send/recv on the connection can return EINTR when a signal lands on the
  // serving thread; before the retry fix a scrape during a signal storm
  // (e.g. a profiler's SIGPROF) came back truncated or empty. Arrange for
  // SIGUSR1 to be deliverable ONLY to the server thread: install a no-op
  // handler without SA_RESTART, start the server while SIGUSR1 is unblocked
  // (its thread inherits that mask), then block it in this thread before
  // spawning the pinger (which inherits the blocked mask).
  struct sigaction action{};
  action.sa_handler = [](int) {};
  action.sa_flags = 0;  // deliberately no SA_RESTART: syscalls see EINTR
  struct sigaction previous{};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  // A body big enough that SendAll needs many send() calls.
  const std::string big(2 * 1024 * 1024, 'x');
  AdminServer server;
  server.AddHandler("/big", "text/plain", [&] { return big; });
  server.Start();

  sigset_t block_usr1, old_mask;
  sigemptyset(&block_usr1);
  sigaddset(&block_usr1, SIGUSR1);
  ASSERT_EQ(::pthread_sigmask(SIG_BLOCK, &block_usr1, &old_mask), 0);

  std::atomic<bool> storming{true};
  std::thread pinger([&] {
    while (storming.load()) {
      ::kill(::getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (int i = 0; i < 3; ++i) {
    const std::string response = HttpGet(server.port(), "/big");
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << i;
    const std::size_t body_at = response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos) << i;
    EXPECT_EQ(response.size() - (body_at + 4), big.size()) << i;
  }

  storming.store(false);
  pinger.join();
  server.Stop();
  ::pthread_sigmask(SIG_SETMASK, &old_mask, nullptr);
  ::sigaction(SIGUSR1, &previous, nullptr);
}

TEST(ObsAdminServer, StartRejectsPortInUse) {
  AdminServer first;
  first.Start();
  AdminServerConfig config;
  config.port = first.port();
  AdminServer second(config);
  EXPECT_THROW(second.Start(), ContractViolation);
  first.Stop();
}

}  // namespace
}  // namespace cordial::obs
