#include "analysis/locality.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::analysis {
namespace {

using hbm::ErrorType;

trace::MceRecord Uer(double t, std::uint32_t bank, std::uint32_t row) {
  trace::MceRecord r;
  r.time_s = t;
  r.address.bank = bank;
  r.address.row = row;
  r.type = ErrorType::kUer;
  return r;
}

class LocalityTest : public ::testing::Test {
 protected:
  hbm::TopologyConfig topology_;
};

TEST_F(LocalityTest, DefaultThresholdsArePowersOfTwo) {
  const auto t = DefaultLocalityThresholds();
  ASSERT_EQ(t.size(), 10u);
  EXPECT_EQ(t.front(), 4u);
  EXPECT_EQ(t.back(), 2048u);
}

TEST_F(LocalityTest, CaptureRatesAreMonotoneInThreshold) {
  Rng rng(1);
  std::vector<trace::BankHistory> banks;
  for (int b = 0; b < 50; ++b) {
    trace::BankHistory bank;
    bank.bank_key = static_cast<std::uint64_t>(b);
    const auto center =
        static_cast<std::uint32_t>(2000 + rng.UniformU64(20000));
    for (int i = 0; i < 5; ++i) {
      bank.events.push_back(
          Uer(i, static_cast<std::uint32_t>(b % 4),
              center + static_cast<std::uint32_t>(rng.UniformU64(300))));
    }
    banks.push_back(std::move(bank));
  }
  const auto sweep =
      ComputeLocalitySweep(banks, topology_, DefaultLocalityThresholds());
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].CaptureRate(), sweep[i - 1].CaptureRate());
  }
}

TEST_F(LocalityTest, TightClustersCaptureEverythingAtSmallThreshold) {
  std::vector<trace::BankHistory> banks(1);
  banks[0].events = {Uer(1, 0, 1000), Uer(2, 0, 1002), Uer(3, 0, 1004)};
  const auto sweep = ComputeLocalitySweep(banks, topology_, {4, 2048});
  EXPECT_EQ(sweep[0].captured, 2u);
  EXPECT_EQ(sweep[0].subsequent_total, 2u);
  EXPECT_NEAR(sweep[0].CaptureRate(), 1.0, 1e-12);
}

TEST_F(LocalityTest, FarRowsAreNotCaptured) {
  std::vector<trace::BankHistory> banks(1);
  banks[0].events = {Uer(1, 0, 100), Uer(2, 0, 20000)};
  const auto sweep = ComputeLocalitySweep(banks, topology_, {128});
  EXPECT_EQ(sweep[0].captured, 0u);
  EXPECT_EQ(sweep[0].subsequent_total, 1u);
}

TEST_F(LocalityTest, NearnessIsAgainstAnyPriorRow) {
  // Rows fail at 100, 5000, 104: the third is near the FIRST, not the
  // immediately-previous one.
  std::vector<trace::BankHistory> banks(1);
  banks[0].events = {Uer(1, 0, 100), Uer(2, 0, 5000), Uer(3, 0, 104)};
  const auto sweep = ComputeLocalitySweep(banks, topology_, {8});
  EXPECT_EQ(sweep[0].captured, 1u);
  EXPECT_EQ(sweep[0].subsequent_total, 2u);
}

TEST_F(LocalityTest, RepeatUersOfSameRowAreOneRow) {
  std::vector<trace::BankHistory> banks(1);
  banks[0].events = {Uer(1, 0, 100), Uer(2, 0, 100), Uer(3, 0, 100)};
  const auto sweep = ComputeLocalitySweep(banks, topology_, {4});
  // A single distinct row: no subsequent rows to judge.
  EXPECT_EQ(sweep[0].subsequent_total, 0u);
  EXPECT_EQ(sweep[0].chi_square, 0.0);
}

TEST_F(LocalityTest, ClusteredDataYieldsInteriorPeak) {
  // Rows spread uniformly in a +/-150 band: the statistic should peak at an
  // interior threshold (around the band width), not at 4 or 2048.
  Rng rng(2);
  std::vector<trace::BankHistory> banks;
  for (int b = 0; b < 200; ++b) {
    trace::BankHistory bank;
    bank.bank_key = static_cast<std::uint64_t>(b);
    const auto center =
        static_cast<std::uint32_t>(1000 + rng.UniformU64(30000));
    for (int i = 0; i < 4; ++i) {
      const auto offset = static_cast<std::int64_t>(rng.UniformU64(301)) - 150;
      bank.events.push_back(Uer(
          i, static_cast<std::uint32_t>(b % 7),
          static_cast<std::uint32_t>(std::max<std::int64_t>(
              0, static_cast<std::int64_t>(center) + offset))));
    }
    banks.push_back(std::move(bank));
  }
  const auto sweep =
      ComputeLocalitySweep(banks, topology_, DefaultLocalityThresholds());
  const std::uint32_t peak = PeakThreshold(sweep);
  EXPECT_GE(peak, 32u);
  EXPECT_LE(peak, 512u);
  // And the statistic is significant at the peak.
  for (const auto& pt : sweep) {
    if (pt.threshold == peak) {
      EXPECT_LT(pt.p_value, 1e-6);
    }
  }
}

TEST_F(LocalityTest, BanksWithFewerThanTwoRowsContributeNothing) {
  std::vector<trace::BankHistory> banks(2);
  banks[0].events = {Uer(1, 0, 5)};
  // bank 1 empty
  const auto sweep = ComputeLocalitySweep(banks, topology_, {64});
  EXPECT_EQ(sweep[0].subsequent_total, 0u);
}

TEST_F(LocalityTest, EmptyThresholdsRejected) {
  EXPECT_THROW(ComputeLocalitySweep({}, topology_, {}), ContractViolation);
  EXPECT_THROW(PeakThreshold({}), ContractViolation);
}

}  // namespace
}  // namespace cordial::analysis
