#include "analysis/labeler.hpp"

#include <gtest/gtest.h>

#include "analysis/empirical.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "trace/fleet.hpp"

namespace cordial::analysis {
namespace {

using hbm::PatternShape;

class LabelerTest : public ::testing::Test {
 protected:
  hbm::TopologyConfig topology_;
  PatternLabeler labeler_{topology_};

  PatternShape Label(const std::vector<std::uint32_t>& rows,
                     std::uint32_t col = 5) {
    return labeler_.LabelShape(rows,
                               std::vector<std::uint32_t>(rows.size(), col));
  }
};

TEST_F(LabelerTest, TightClusterIsSingle) {
  EXPECT_EQ(Label({100, 108, 116, 140}), PatternShape::kSingleRowCluster);
  EXPECT_EQ(Label({5000}), PatternShape::kSingleRowCluster);
  EXPECT_EQ(Label({0, 1, 2}), PatternShape::kSingleRowCluster);
}

TEST_F(LabelerTest, TwoDistantClustersAreDouble) {
  EXPECT_EQ(Label({1000, 1016, 5000, 5032}), PatternShape::kDoubleRowCluster);
  EXPECT_EQ(Label({100, 4200}), PatternShape::kDoubleRowCluster);
}

TEST_F(LabelerTest, HalfBankGapIsHalfTotal) {
  const std::uint32_t half = topology_.rows_per_bank / 2;
  EXPECT_EQ(Label({1000, 1032, 1000 + half, 1040 + half}),
            PatternShape::kHalfTotalRowCluster);
  // Slightly off the exact alias distance but within tolerance.
  EXPECT_EQ(Label({2000, 2000 + half + 500}),
            PatternShape::kHalfTotalRowCluster);
  // Far outside the tolerance: plain double cluster.
  EXPECT_EQ(Label({2000, 2000 + half + 5000}),
            PatternShape::kDoubleRowCluster);
}

TEST_F(LabelerTest, ThreePlusClustersAreScattered) {
  EXPECT_EQ(Label({100, 8000, 20000, 31000}), PatternShape::kScattered);
  EXPECT_EQ(Label({0, 5000, 10000}), PatternShape::kScattered);
}

TEST_F(LabelerTest, WholeColumnNeedsOneColumnAndWideSpan) {
  std::vector<std::uint32_t> rows;
  for (int i = 0; i < 15; ++i) {
    rows.push_back(static_cast<std::uint32_t>(i * 2200));
  }
  EXPECT_EQ(Label(rows, 7), PatternShape::kWholeColumn);

  // Same rows but spread over two columns: just scattered.
  std::vector<std::uint32_t> cols(rows.size(), 7);
  cols[3] = 8;
  EXPECT_EQ(labeler_.LabelShape(rows, cols), PatternShape::kScattered);

  // One column but too few rows: falls through to geometric rules.
  EXPECT_NE(Label({0, 10000, 30000}, 7), PatternShape::kWholeColumn);
}

TEST_F(LabelerTest, DuplicateRowsAreIgnored) {
  EXPECT_EQ(Label({100, 100, 100, 104}), PatternShape::kSingleRowCluster);
}

TEST_F(LabelerTest, ClustersHelperSplitsAtGaps) {
  const auto clusters = labeler_.Clusters({5, 10, 5000, 5010, 5020});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::pair<std::uint32_t, std::uint32_t>{5, 10}));
  EXPECT_EQ(clusters[1], (std::pair<std::uint32_t, std::uint32_t>{5000, 5020}));
}

TEST_F(LabelerTest, RejectsEmptyAndMismatchedInput) {
  EXPECT_THROW(labeler_.LabelShape({}, {}), ContractViolation);
  EXPECT_THROW(labeler_.LabelShape({1, 2}, {0}), ContractViolation);
}

TEST_F(LabelerTest, BankHistoryWithoutUerIsCeOnly) {
  trace::BankHistory bank;
  trace::MceRecord r;
  r.type = hbm::ErrorType::kCe;
  bank.events.push_back(r);
  EXPECT_EQ(labeler_.LabelShape(bank), PatternShape::kCeOnly);
  EXPECT_THROW(labeler_.LabelClass(bank), ContractViolation);
}

TEST_F(LabelerTest, AgreesWithGeneratorGroundTruth) {
  trace::CalibrationProfile profile;
  profile.scale = 0.1;
  trace::FleetGenerator generator(topology_, profile);
  const trace::GeneratedFleet fleet = generator.Generate(77);
  const double agreement = LabelerAgreement(fleet, labeler_);
  EXPECT_GT(agreement, 0.85);
}

}  // namespace
}  // namespace cordial::analysis
