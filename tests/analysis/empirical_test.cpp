#include "analysis/empirical.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace cordial::analysis {
namespace {

using hbm::ErrorType;

trace::MceRecord Make(double t, std::uint32_t npu, std::uint32_t bank,
                      std::uint32_t row, ErrorType type) {
  trace::MceRecord r;
  r.time_s = t;
  r.address.npu = npu;
  r.address.bank = bank;
  r.address.row = row;
  r.type = type;
  return r;
}

class EmpiricalTest : public ::testing::Test {
 protected:
  hbm::TopologyConfig topology_;
  hbm::AddressCodec codec_{topology_};
};

TEST_F(EmpiricalTest, SuddenStudyHandcrafted) {
  // NPU 0, bank 0: CE at t=1 in row 5, UER at t=2 in row 9 (different row).
  //   -> row 9 is sudden; bank/NPU are non-sudden (precursor before UER).
  // NPU 1, bank 0: UER at t=1 row 3, CE afterwards at t=2 row 3.
  //   -> everything sudden (precursor came after).
  trace::ErrorLog log;
  log.Add(Make(1.0, 0, 0, 5, ErrorType::kCe));
  log.Add(Make(2.0, 0, 0, 9, ErrorType::kUer));
  log.Add(Make(1.0, 1, 0, 3, ErrorType::kUer));
  log.Add(Make(2.0, 1, 0, 3, ErrorType::kCe));
  log.Sort();

  const auto rows = ComputeSuddenUerStudy(log, codec_);
  ASSERT_EQ(rows.size(), 7u);
  const SuddenUerRow& npu = rows[0];
  EXPECT_EQ(npu.level, hbm::Level::kNpu);
  EXPECT_EQ(npu.non_sudden, 1u);
  EXPECT_EQ(npu.sudden, 1u);
  EXPECT_NEAR(npu.PredictableRatio(), 0.5, 1e-12);

  const SuddenUerRow& row_level = rows[6];
  EXPECT_EQ(row_level.level, hbm::Level::kRow);
  EXPECT_EQ(row_level.sudden, 2u);  // both UER rows had no in-row precursor
  EXPECT_EQ(row_level.non_sudden, 0u);
}

TEST_F(EmpiricalTest, InRowPrecursorMakesRowNonSudden) {
  trace::ErrorLog log;
  log.Add(Make(1.0, 0, 0, 5, ErrorType::kUeo));
  log.Add(Make(2.0, 0, 0, 5, ErrorType::kUer));
  log.Sort();
  const auto rows = ComputeSuddenUerStudy(log, codec_);
  EXPECT_EQ(rows[6].non_sudden, 1u);
  EXPECT_EQ(rows[6].sudden, 0u);
}

TEST_F(EmpiricalTest, SimultaneousPrecursorDoesNotCount) {
  // CE and UER at the same timestamp: "strictly before" fails, so the CE
  // sorts first by type... CE(0) < UER(2) at equal time and address order;
  // the walk sees CE first, making the entity non-sudden. Use a different
  // row for the CE so address ordering is deterministic.
  trace::ErrorLog log;
  log.Add(Make(1.0, 0, 0, 4, ErrorType::kCe));
  log.Add(Make(1.0, 0, 0, 5, ErrorType::kUer));
  log.Sort();
  const auto rows = ComputeSuddenUerStudy(log, codec_);
  // Row level: row 5 has no in-row precursor.
  EXPECT_EQ(rows[6].sudden, 1u);
}

TEST_F(EmpiricalTest, SuddenStudyRequiresSortedLog) {
  trace::ErrorLog log;
  log.Add(Make(2.0, 0, 0, 1, ErrorType::kCe));
  log.Add(Make(1.0, 0, 0, 2, ErrorType::kUer));
  EXPECT_THROW(ComputeSuddenUerStudy(log, codec_), ContractViolation);
}

TEST_F(EmpiricalTest, DatasetSummaryHandcrafted) {
  trace::ErrorLog log;
  log.Add(Make(1.0, 0, 0, 1, ErrorType::kCe));
  log.Add(Make(2.0, 0, 1, 2, ErrorType::kUer));
  log.Add(Make(3.0, 1, 0, 3, ErrorType::kUeo));
  const auto summary = ComputeDatasetSummary(log, codec_);
  ASSERT_EQ(summary.size(), 7u);

  const DatasetSummaryRow& npu = summary[0];
  EXPECT_EQ(npu.with_ce, 1u);
  EXPECT_EQ(npu.with_ueo, 1u);
  EXPECT_EQ(npu.with_uer, 1u);
  EXPECT_EQ(npu.total, 2u);

  const DatasetSummaryRow& bank = summary[5];
  EXPECT_EQ(bank.with_ce, 1u);
  EXPECT_EQ(bank.with_uer, 1u);
  EXPECT_EQ(bank.total, 3u);

  const DatasetSummaryRow& row = summary[6];
  EXPECT_EQ(row.total, 3u);
}

TEST_F(EmpiricalTest, PatternDistributionCountsUerBanksOnly) {
  PatternLabeler labeler(topology_);
  std::vector<trace::BankHistory> banks(3);
  // Bank 0: tight single cluster.
  banks[0].events = {Make(1.0, 0, 0, 100, ErrorType::kUer),
                     Make(2.0, 0, 0, 108, ErrorType::kUer)};
  // Bank 1: CE only -> excluded.
  banks[1].events = {Make(1.0, 0, 1, 5, ErrorType::kCe)};
  // Bank 2: scattered.
  banks[2].events = {Make(1.0, 0, 2, 100, ErrorType::kUer),
                     Make(2.0, 0, 2, 9000, ErrorType::kUer),
                     Make(3.0, 0, 2, 25000, ErrorType::kUer)};
  const PatternDistribution dist = ComputePatternDistribution(banks, labeler);
  EXPECT_EQ(dist.total_uer_banks, 2u);
  EXPECT_NEAR(dist.Fraction(hbm::PatternShape::kSingleRowCluster), 0.5, 1e-12);
  EXPECT_NEAR(dist.Fraction(hbm::PatternShape::kScattered), 0.5, 1e-12);
  EXPECT_EQ(dist.Fraction(hbm::PatternShape::kWholeColumn), 0.0);
}

TEST_F(EmpiricalTest, PatternDistributionEmptyInput) {
  PatternLabeler labeler(topology_);
  const PatternDistribution dist = ComputePatternDistribution({}, labeler);
  EXPECT_EQ(dist.total_uer_banks, 0u);
  EXPECT_EQ(dist.Fraction(hbm::PatternShape::kScattered), 0.0);
}

}  // namespace
}  // namespace cordial::analysis
