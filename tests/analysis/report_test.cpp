#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/fleet.hpp"

namespace cordial::analysis {
namespace {

TEST(StudyReport, ContainsEverySection) {
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = 0.05;
  trace::FleetGenerator generator(topology, profile);
  const trace::GeneratedFleet fleet = generator.Generate(17);

  std::ostringstream out;
  WriteStudyReport(fleet.log, topology, out);
  const std::string report = out.str();

  EXPECT_NE(report.find("# HBM fleet error study"), std::string::npos);
  EXPECT_NE(report.find("## Sudden vs non-sudden UERs"), std::string::npos);
  EXPECT_NE(report.find("## Dataset summary"), std::string::npos);
  EXPECT_NE(report.find("## Failure pattern distribution"), std::string::npos);
  EXPECT_NE(report.find("## Cross-row locality"), std::string::npos);
  EXPECT_NE(report.find("## Example bank error maps"), std::string::npos);
  EXPECT_NE(report.find("single-row-cluster"), std::string::npos);
  EXPECT_NE(report.find("Peak significance"), std::string::npos);
  // Markdown table syntax present.
  EXPECT_NE(report.find("|---|"), std::string::npos);
}

TEST(StudyReport, CustomOptionsRespected) {
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = 0.05;
  trace::FleetGenerator generator(topology, profile);
  const trace::GeneratedFleet fleet = generator.Generate(18);

  ReportOptions options;
  options.title = "Custom Title 123";
  options.example_maps_per_shape = 0;
  std::ostringstream out;
  WriteStudyReport(fleet.log, topology, out, options);
  const std::string report = out.str();
  EXPECT_NE(report.find("# Custom Title 123"), std::string::npos);
  EXPECT_EQ(report.find("## Example bank error maps"), std::string::npos);
}

TEST(StudyReport, HandlesLogWithoutUerPairs) {
  // A log with a single CE only: every section must still render.
  trace::ErrorLog log;
  trace::MceRecord r;
  r.time_s = 1.0;
  r.type = hbm::ErrorType::kCe;
  log.Add(r);
  hbm::TopologyConfig topology;
  std::ostringstream out;
  WriteStudyReport(log, topology, out);
  EXPECT_NE(out.str().find("locality not"), std::string::npos);
}

TEST(StudyReport, AcceptsUnsortedLogs) {
  trace::ErrorLog log;
  trace::MceRecord r;
  r.type = hbm::ErrorType::kUer;
  r.time_s = 5.0;
  r.address.row = 10;
  log.Add(r);
  r.time_s = 1.0;
  r.address.row = 12;
  r.type = hbm::ErrorType::kCe;
  log.Add(r);  // out of order on purpose
  hbm::TopologyConfig topology;
  std::ostringstream out;
  EXPECT_NO_THROW(WriteStudyReport(log, topology, out));
}

}  // namespace
}  // namespace cordial::analysis
