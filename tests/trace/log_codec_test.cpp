#include "trace/log_codec.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "trace/fleet.hpp"

namespace cordial::trace {
namespace {

TEST(LogCodec, RoundTripsHandcraftedRecords) {
  ErrorLog log;
  MceRecord r;
  r.time_s = 1234.5;
  r.address = {1, 2, 3, 1, 2, 1, 3, 2, 30000, 101};
  r.type = hbm::ErrorType::kUeo;
  log.Add(r);
  r.time_s = 99.25;
  r.type = hbm::ErrorType::kCe;
  r.address.row = 0;
  log.Add(r);

  std::stringstream buffer;
  LogCodec::WriteCsv(log, buffer);
  const ErrorLog parsed = LogCodec::ReadCsv(buffer);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.records()[0], log.records()[0]);
  EXPECT_EQ(parsed.records()[1], log.records()[1]);
}

TEST(LogCodec, RoundTripsGeneratedFleetLog) {
  hbm::TopologyConfig topology;
  CalibrationProfile profile;
  profile.scale = 0.02;
  FleetGenerator generator(topology, profile);
  const GeneratedFleet fleet = generator.Generate(1);
  ASSERT_GT(fleet.log.size(), 100u);

  std::stringstream buffer;
  LogCodec::WriteCsv(fleet.log, buffer);
  const ErrorLog parsed = LogCodec::ReadCsv(buffer);
  ASSERT_EQ(parsed.size(), fleet.log.size());
  for (std::size_t i = 0; i < parsed.size(); i += 97) {
    EXPECT_EQ(parsed.records()[i], fleet.log.records()[i]);
  }
}

TEST(LogCodec, HeaderOnlyYieldsEmptyLog) {
  std::istringstream in(
      "time_s,node,npu,hbm,sid,channel,pseudo_channel,bank_group,bank,row,"
      "col,type\n");
  EXPECT_TRUE(LogCodec::ReadCsv(in).empty());
}

TEST(LogCodec, EmptyInputThrows) {
  std::istringstream in("");
  EXPECT_THROW(LogCodec::ReadCsv(in), ParseError);
}

TEST(LogCodec, WrongArityThrows) {
  std::istringstream in("header\n1.0,2,3\n");
  EXPECT_THROW(LogCodec::ReadCsv(in), ParseError);
}

TEST(LogCodec, BadNumberThrows) {
  std::istringstream in(
      "h,h,h,h,h,h,h,h,h,h,h,h\n"
      "1.0,0,0,0,0,0,0,0,0,abc,0,CE\n");
  EXPECT_THROW(LogCodec::ReadCsv(in), ParseError);
}

TEST(LogCodec, BadTimeThrows) {
  std::istringstream in(
      "h,h,h,h,h,h,h,h,h,h,h,h\n"
      "not-a-time,0,0,0,0,0,0,0,0,0,0,CE\n");
  EXPECT_THROW(LogCodec::ReadCsv(in), ParseError);
}

TEST(LogCodec, UnknownErrorTypeThrows) {
  std::istringstream in(
      "h,h,h,h,h,h,h,h,h,h,h,h\n"
      "1.0,0,0,0,0,0,0,0,0,0,0,FATAL\n");
  EXPECT_THROW(LogCodec::ReadCsv(in), ParseError);
}

TEST(LogCodec, AllErrorTypesParse) {
  std::istringstream in(
      "h,h,h,h,h,h,h,h,h,h,h,h\n"
      "1.0,0,0,0,0,0,0,0,0,0,0,CE\n"
      "2.0,0,0,0,0,0,0,0,0,0,0,UEO\n"
      "3.0,0,0,0,0,0,0,0,0,0,0,UER\n");
  const ErrorLog log = LogCodec::ReadCsv(in);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.records()[0].type, hbm::ErrorType::kCe);
  EXPECT_EQ(log.records()[1].type, hbm::ErrorType::kUeo);
  EXPECT_EQ(log.records()[2].type, hbm::ErrorType::kUer);
}

TEST(LogCodec, BinaryRoundTripsHandcraftedRecords) {
  MceRecord r;
  r.time_s = 1234.5;
  r.address = {1, 2, 3, 1, 2, 1, 3, 2, 30000, 101};
  r.type = hbm::ErrorType::kUeo;

  std::string bytes;
  LogCodec::AppendBinary(r, bytes);
  ASSERT_EQ(bytes.size(), LogCodec::kBinaryRecordBytes);
  EXPECT_EQ(LogCodec::ParseBinary(bytes), r);

  // Non-trivial doubles survive bit-exactly (raw IEEE-754 bits on the wire).
  r.time_s = 1.0 / 3.0;
  r.type = hbm::ErrorType::kCe;
  bytes.clear();
  LogCodec::AppendBinary(r, bytes);
  EXPECT_EQ(LogCodec::ParseBinary(bytes).time_s, 1.0 / 3.0);
}

TEST(LogCodec, BinaryRoundTripsGeneratedFleetLog) {
  hbm::TopologyConfig topology;
  CalibrationProfile profile;
  profile.scale = 0.02;
  const GeneratedFleet fleet = FleetGenerator(topology, profile).Generate(1);
  ASSERT_GT(fleet.log.size(), 100u);

  std::string bytes;
  for (const MceRecord& r : fleet.log.records()) {
    LogCodec::AppendBinary(r, bytes);
  }
  ASSERT_EQ(bytes.size(),
            fleet.log.size() * LogCodec::kBinaryRecordBytes);
  std::string_view view(bytes);
  for (const MceRecord& r : fleet.log.records()) {
    EXPECT_EQ(LogCodec::ParseBinary(view), r);
    view.remove_prefix(LogCodec::kBinaryRecordBytes);
  }
}

TEST(LogCodec, BinaryTruncationIsParseErrorAtEveryPrefix) {
  MceRecord r;
  r.time_s = 7.5;
  r.address.row = 42;
  r.type = hbm::ErrorType::kUer;
  std::string bytes;
  LogCodec::AppendBinary(r, bytes);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(LogCodec::ParseBinary(std::string_view(bytes).substr(0, cut)),
                 ParseError)
        << "prefix length " << cut;
  }
}

TEST(LogCodec, BinaryUnknownTypeByteIsParseError) {
  MceRecord r;
  std::string bytes;
  LogCodec::AppendBinary(r, bytes);
  // Every flipped bit in the type byte lands outside the enum (3..255) or
  // on a different valid type; only the former must throw — the latter is
  // the wire CRC's job one layer up.
  for (int bit = 0; bit < 8; ++bit) {
    std::string corrupt = bytes;
    corrupt.back() = static_cast<char>(corrupt.back() ^ (1 << bit));
    const unsigned char type =
        static_cast<unsigned char>(corrupt.back());
    if (type > 2) {
      EXPECT_THROW(LogCodec::ParseBinary(corrupt), ParseError)
          << "type byte " << int(type);
    } else {
      EXPECT_EQ(static_cast<unsigned char>(
                    LogCodec::ParseBinary(corrupt).type),
                type);
    }
  }
}

TEST(LogCodec, BinaryIgnoresTrailingBytes) {
  MceRecord r;
  r.address.bank = 3;
  std::string bytes;
  LogCodec::AppendBinary(r, bytes);
  LogCodec::AppendBinary(r, bytes);  // a second record behind the first
  EXPECT_EQ(LogCodec::ParseBinary(bytes), r);
}

TEST(LogCodec, ValidatedParseAcceptsInBoundsLines) {
  const hbm::TopologyConfig topology;
  const hbm::AddressCodec codec(topology);
  const std::string line = "10.5,1,2,3,1,2,1,3,2,30000,101,UER";
  const MceRecord r = LogCodec::ParseCsvLine(line, codec);
  EXPECT_EQ(r.address.row, 30000u);
  EXPECT_EQ(r.type, hbm::ErrorType::kUer);
}

TEST(LogCodec, ValidatedParseRejectsOutOfTopologyCoordinates) {
  const hbm::TopologyConfig topology;
  const hbm::AddressCodec codec(topology);
  // row 40000 > rows_per_bank: plain parse is fine (it is a well-formed
  // u32), the validated overload must flag it as malformed.
  const std::string line = "10.5,1,2,3,1,2,1,3,2,40000,101,UER";
  EXPECT_NO_THROW(LogCodec::ParseCsvLine(line));
  EXPECT_THROW(LogCodec::ParseCsvLine(line, codec), ParseError);
  // Same for every coarser coordinate, e.g. an impossible node id.
  EXPECT_THROW(
      LogCodec::ParseCsvLine("10.5,9999,2,3,1,2,1,3,2,30000,101,UER", codec),
      ParseError);
}

TEST(LogCodec, ValidatedParseRejectsNonFiniteTimestamps) {
  const hbm::TopologyConfig topology;
  const hbm::AddressCodec codec(topology);
  EXPECT_NO_THROW(
      LogCodec::ParseCsvLine("inf,1,2,3,1,2,1,3,2,30000,101,CE"));
  EXPECT_THROW(
      LogCodec::ParseCsvLine("inf,1,2,3,1,2,1,3,2,30000,101,CE", codec),
      ParseError);
  EXPECT_THROW(
      LogCodec::ParseCsvLine("nan,1,2,3,1,2,1,3,2,30000,101,CE", codec),
      ParseError);
}

}  // namespace
}  // namespace cordial::trace
