#include "trace/replay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "trace/fleet.hpp"

namespace cordial::trace {
namespace {

MceRecord Make(double t, std::uint32_t bank, std::uint32_t row,
               hbm::ErrorType type) {
  MceRecord r;
  r.time_s = t;
  r.address.bank = bank;
  r.address.row = row;
  r.type = type;
  return r;
}

TEST(StreamReplayer, AccumulatesPerBankState) {
  hbm::TopologyConfig topology;
  hbm::AddressCodec codec(topology);
  StreamReplayer replayer(codec);
  const BankHistory* a1 =
      replayer.Ingest(Make(1.0, 0, 10, hbm::ErrorType::kCe));
  ASSERT_NE(a1, nullptr);
  EXPECT_EQ(a1->events.size(), 1u);
  replayer.Ingest(Make(2.0, 1, 20, hbm::ErrorType::kUer));
  const BankHistory* a2 =
      replayer.Ingest(Make(3.0, 0, 11, hbm::ErrorType::kUer));
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(a2->events.size(), 2u);
  EXPECT_EQ(replayer.bank_count(), 2u);
  EXPECT_EQ(replayer.record_count(), 3u);
  EXPECT_DOUBLE_EQ(replayer.now(), 3.0);
}

TEST(StreamReplayer, FindLocatesBanks) {
  hbm::TopologyConfig topology;
  hbm::AddressCodec codec(topology);
  StreamReplayer replayer(codec);
  const MceRecord r = Make(1.0, 3, 10, hbm::ErrorType::kCe);
  replayer.Ingest(r);
  const std::uint64_t key = codec.BankKey(r.address);
  ASSERT_NE(replayer.Find(key), nullptr);
  EXPECT_EQ(replayer.Find(key)->bank_key, key);
  EXPECT_EQ(replayer.Find(key + 1), nullptr);
}

TEST(StreamReplayer, RejectsTimeTravel) {
  hbm::TopologyConfig topology;
  hbm::AddressCodec codec(topology);
  StreamReplayer replayer(codec);
  replayer.Ingest(Make(5.0, 0, 1, hbm::ErrorType::kCe));
  EXPECT_THROW(replayer.Ingest(Make(4.0, 0, 2, hbm::ErrorType::kCe)),
               ContractViolation);
  // Equal timestamps are fine.
  EXPECT_NO_THROW(replayer.Ingest(Make(5.0, 0, 3, hbm::ErrorType::kCe)));
}

TEST(StreamReplayer, MatchesBatchGrouping) {
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = 0.03;
  FleetGenerator generator(topology, profile);
  const GeneratedFleet fleet = generator.Generate(4);
  hbm::AddressCodec codec(topology);

  StreamReplayer replayer(codec);
  for (const MceRecord& r : fleet.log.records()) replayer.Ingest(r);

  const auto batch = fleet.log.GroupByBank(codec);
  ASSERT_EQ(replayer.bank_count(), batch.size());
  for (const BankHistory& bank : batch) {
    const BankHistory* streamed = replayer.Find(bank.bank_key);
    ASSERT_NE(streamed, nullptr);
    ASSERT_EQ(streamed->events.size(), bank.events.size());
    // Same multiset of events; per-bank order may differ only within equal
    // timestamps (batch sorts by address/type as tie-break).
    for (std::size_t i = 0; i < bank.events.size(); ++i) {
      EXPECT_DOUBLE_EQ(streamed->events[i].time_s, bank.events[i].time_s);
    }
  }
}

TEST(StreamReplayer, ShuffledThenSortedLogMatchesBatchGrouping) {
  // A log that arrives out of order must be sorted before streaming; once
  // it is, the replayer rebuilds exactly what GroupByBank computes.
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = 0.03;
  FleetGenerator generator(topology, profile);
  const GeneratedFleet fleet = generator.Generate(11);
  hbm::AddressCodec codec(topology);

  std::vector<MceRecord> shuffled(fleet.log.records().begin(),
                                  fleet.log.records().end());
  Rng rng(3);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.UniformU64(i)]);
  }
  std::stable_sort(shuffled.begin(), shuffled.end(),
                   [](const MceRecord& a, const MceRecord& b) {
                     return a.time_s < b.time_s;
                   });

  StreamReplayer replayer(codec);
  for (const MceRecord& r : shuffled) replayer.Ingest(r);

  const auto batch = fleet.log.GroupByBank(codec);
  ASSERT_EQ(replayer.bank_count(), batch.size());
  std::size_t total = 0;
  for (const BankHistory& bank : batch) {
    const BankHistory* streamed = replayer.Find(bank.bank_key);
    ASSERT_NE(streamed, nullptr);
    ASSERT_EQ(streamed->events.size(), bank.events.size());
    for (std::size_t i = 0; i < bank.events.size(); ++i) {
      EXPECT_DOUBLE_EQ(streamed->events[i].time_s, bank.events[i].time_s);
    }
    total += bank.events.size();
  }
  EXPECT_EQ(replayer.record_count(), total);
}

TEST(StreamReplayer, RetentionKeepsOnlyNewestEventsPerBank) {
  hbm::TopologyConfig topology;
  hbm::AddressCodec codec(topology);
  StreamReplayer replayer(codec, RetentionPolicy{4});
  for (std::uint32_t i = 0; i < 10; ++i) {
    replayer.Ingest(Make(static_cast<double>(i), 0, 100 + i,
                         hbm::ErrorType::kCe));
  }
  const MceRecord probe = Make(10.0, 0, 50, hbm::ErrorType::kCe);
  const std::uint64_t key = codec.BankKey(probe.address);
  const BankHistory* bank = replayer.Find(key);
  ASSERT_NE(bank, nullptr);
  ASSERT_EQ(bank->events.size(), 4u);
  // The newest four survive, oldest first.
  EXPECT_DOUBLE_EQ(bank->events.front().time_s, 6.0);
  EXPECT_DOUBLE_EQ(bank->events.back().time_s, 9.0);
  EXPECT_EQ(replayer.records_dropped(), 6u);
  // Accounting still covers everything ingested.
  EXPECT_EQ(replayer.record_count(), 10u);
}

TEST(StreamReplayer, DropSkewPolicyDiscardsStaleRecordsAndCounts) {
  hbm::TopologyConfig topology;
  hbm::AddressCodec codec(topology);
  RetentionPolicy retention;
  retention.skew_policy = TimeSkewPolicy::kDrop;
  StreamReplayer replayer(codec, retention);
  replayer.Ingest(Make(5.0, 0, 1, hbm::ErrorType::kCe));
  EXPECT_EQ(replayer.Ingest(Make(4.0, 0, 2, hbm::ErrorType::kCe)), nullptr);
  EXPECT_EQ(replayer.records_skew_dropped(), 1u);
  // The dropped record leaves all other state untouched.
  EXPECT_EQ(replayer.record_count(), 1u);
  EXPECT_DOUBLE_EQ(replayer.now(), 5.0);
  const BankHistory* bank =
      replayer.Ingest(Make(6.0, 0, 3, hbm::ErrorType::kCe));
  ASSERT_NE(bank, nullptr);
  EXPECT_EQ(bank->events.size(), 2u);
}

TEST(StreamReplayer, SaveRestoreRoundTripsExactly) {
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = 0.03;
  FleetGenerator generator(topology, profile);
  const GeneratedFleet fleet = generator.Generate(7);
  hbm::AddressCodec codec(topology);

  StreamReplayer original(codec, RetentionPolicy{8});
  for (const MceRecord& r : fleet.log.records()) original.Ingest(r);
  std::ostringstream saved;
  original.Save(saved);

  StreamReplayer restored(codec, RetentionPolicy{8});
  std::istringstream in(saved.str());
  restored.Restore(in);
  EXPECT_EQ(restored.bank_count(), original.bank_count());
  EXPECT_EQ(restored.record_count(), original.record_count());
  EXPECT_EQ(restored.records_dropped(), original.records_dropped());
  EXPECT_DOUBLE_EQ(restored.now(), original.now());
  std::ostringstream resaved;
  restored.Save(resaved);
  EXPECT_EQ(resaved.str(), saved.str());
}

TEST(StreamReplayer, RestoreRejectsMalformedStreams) {
  hbm::TopologyConfig topology;
  hbm::AddressCodec codec(topology);
  StreamReplayer replayer(codec);
  std::istringstream wrong_magic("some_other_stream v1\n");
  EXPECT_THROW(replayer.Restore(wrong_magic), ParseError);
  std::istringstream bad_type(
      "stream_replayer v1\n0 1 0 0\nbanks 1\n7 1\n1 0 9\n");
  EXPECT_THROW(replayer.Restore(bad_type), ParseError);
}

TEST(StreamReplayer, ZeroRetentionBoundKeepsEverything) {
  hbm::TopologyConfig topology;
  hbm::AddressCodec codec(topology);
  StreamReplayer replayer(codec, RetentionPolicy{0});
  for (std::uint32_t i = 0; i < 10; ++i) {
    replayer.Ingest(Make(static_cast<double>(i), 0, i, hbm::ErrorType::kCe));
  }
  EXPECT_EQ(replayer.records_dropped(), 0u);
  const MceRecord probe = Make(10.0, 0, 0, hbm::ErrorType::kCe);
  const BankHistory* bank = replayer.Find(codec.BankKey(probe.address));
  ASSERT_NE(bank, nullptr);
  EXPECT_EQ(bank->events.size(), 10u);
}

}  // namespace
}  // namespace cordial::trace
