#include "trace/error_log.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hbm/address.hpp"

namespace cordial::trace {
namespace {

using hbm::DeviceAddress;
using hbm::ErrorType;

MceRecord Make(double t, std::uint32_t bank, std::uint32_t row,
               ErrorType type) {
  MceRecord r;
  r.time_s = t;
  r.address.bank = bank;
  r.address.row = row;
  r.type = type;
  return r;
}

TEST(MceRecord, OrderingIsTimeFirst) {
  const MceRecord a = Make(1.0, 3, 9, ErrorType::kUer);
  const MceRecord b = Make(2.0, 0, 0, ErrorType::kCe);
  EXPECT_LT(a, b);
}

TEST(MceRecord, TieBreakByAddressThenType) {
  const MceRecord a = Make(1.0, 0, 5, ErrorType::kCe);
  const MceRecord b = Make(1.0, 0, 6, ErrorType::kCe);
  EXPECT_LT(a, b);
  const MceRecord c = Make(1.0, 0, 5, ErrorType::kUer);
  EXPECT_LT(a, c);
}

TEST(MceRecord, ToStringMentionsTypeAndAddress) {
  const std::string s = Make(3.5, 1, 42, ErrorType::kUeo).ToString();
  EXPECT_NE(s.find("UEO"), std::string::npos);
  EXPECT_NE(s.find("row42"), std::string::npos);
}

TEST(ErrorLog, SortProducesCanonicalOrder) {
  ErrorLog log;
  log.Add(Make(5.0, 0, 1, ErrorType::kCe));
  log.Add(Make(1.0, 0, 2, ErrorType::kUer));
  log.Add(Make(3.0, 0, 3, ErrorType::kUeo));
  log.Sort();
  EXPECT_DOUBLE_EQ(log.records()[0].time_s, 1.0);
  EXPECT_DOUBLE_EQ(log.records()[1].time_s, 3.0);
  EXPECT_DOUBLE_EQ(log.records()[2].time_s, 5.0);
}

TEST(ErrorLog, GroupByBankSplitsAndSorts) {
  hbm::TopologyConfig t;
  hbm::AddressCodec codec(t);
  ErrorLog log;
  log.Add(Make(5.0, 1, 10, ErrorType::kUer));
  log.Add(Make(1.0, 1, 11, ErrorType::kCe));
  log.Add(Make(2.0, 2, 12, ErrorType::kCe));
  const auto banks = log.GroupByBank(codec);
  ASSERT_EQ(banks.size(), 2u);
  // Output sorted by bank key; bank 1 < bank 2.
  EXPECT_EQ(banks[0].events.size(), 2u);
  EXPECT_DOUBLE_EQ(banks[0].events[0].time_s, 1.0);  // time-sorted per bank
  EXPECT_DOUBLE_EQ(banks[0].events[1].time_s, 5.0);
  EXPECT_EQ(banks[1].events.size(), 1u);
  EXPECT_LT(banks[0].bank_key, banks[1].bank_key);
}

TEST(ErrorLog, GroupByBankOnEmptyLog) {
  hbm::TopologyConfig t;
  hbm::AddressCodec codec(t);
  EXPECT_TRUE(ErrorLog{}.GroupByBank(codec).empty());
}

TEST(BankHistory, OfTypePreservesOrder) {
  BankHistory bank;
  bank.events = {Make(1.0, 0, 1, ErrorType::kCe),
                 Make(2.0, 0, 2, ErrorType::kUer),
                 Make(3.0, 0, 3, ErrorType::kCe)};
  const auto ces = bank.OfType(ErrorType::kCe);
  ASSERT_EQ(ces.size(), 2u);
  EXPECT_DOUBLE_EQ(ces[0].time_s, 1.0);
  EXPECT_DOUBLE_EQ(ces[1].time_s, 3.0);
  EXPECT_EQ(bank.OfType(ErrorType::kUeo).size(), 0u);
}

TEST(BankHistory, FirstUerTimeAndHasUer) {
  BankHistory bank;
  bank.events = {Make(1.0, 0, 1, ErrorType::kCe),
                 Make(2.5, 0, 2, ErrorType::kUer),
                 Make(3.0, 0, 2, ErrorType::kUer)};
  EXPECT_TRUE(bank.HasUer());
  EXPECT_DOUBLE_EQ(bank.FirstUerTime(), 2.5);

  BankHistory no_uer;
  no_uer.events = {Make(1.0, 0, 1, ErrorType::kCe)};
  EXPECT_FALSE(no_uer.HasUer());
  EXPECT_TRUE(std::isinf(no_uer.FirstUerTime()));
}

TEST(BankHistory, CountBeforeIsStrict) {
  BankHistory bank;
  bank.events = {Make(1.0, 0, 1, ErrorType::kCe),
                 Make(2.0, 0, 2, ErrorType::kCe),
                 Make(2.0, 0, 3, ErrorType::kUeo),
                 Make(3.0, 0, 4, ErrorType::kCe)};
  EXPECT_EQ(bank.CountBefore(hbm::ErrorType::kCe, 2.0), 1u);  // strictly before
  EXPECT_EQ(bank.CountBefore(hbm::ErrorType::kCe, 3.5), 3u);
  EXPECT_EQ(bank.CountBefore(hbm::ErrorType::kUeo, 2.0), 0u);
  EXPECT_EQ(bank.CountBefore(hbm::ErrorType::kUeo, 2.5), 1u);
}

TEST(ErrorLog, AppendBulk) {
  ErrorLog log;
  log.Append({Make(1.0, 0, 1, ErrorType::kCe), Make(2.0, 0, 2, ErrorType::kCe)});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_FALSE(log.empty());
}

}  // namespace
}  // namespace cordial::trace
