#include "trace/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/check.hpp"
#include "hbm/fault.hpp"

namespace cordial::trace {
namespace {

using hbm::ErrorType;
using hbm::PatternShape;

class TimelineTest : public ::testing::Test {
 protected:
  hbm::TopologyConfig topology_;
  hbm::FootprintGenerator footprints_{topology_};
  TimelineExpander expander_{topology_};

  hbm::DeviceAddress Base() {
    hbm::DeviceAddress a;
    a.node = 1;
    a.bank = 2;
    return a;
  }

  std::vector<MceRecord> Expand(PatternShape shape, std::uint64_t seed) {
    Rng rng(seed);
    const auto plan = footprints_.Generate(shape, rng);
    auto events = expander_.ExpandBank(plan, Base(), rng);
    std::sort(events.begin(), events.end());
    return events;
  }
};

TEST_F(TimelineTest, CeOnlyBankEmitsOnlyCes) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (const MceRecord& r : Expand(PatternShape::kCeOnly, seed)) {
      EXPECT_EQ(r.type, ErrorType::kCe);
    }
  }
}

TEST_F(TimelineTest, AllEventsWithinWindow) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (PatternShape shape :
         {PatternShape::kSingleRowCluster, PatternShape::kScattered}) {
      for (const MceRecord& r : Expand(shape, seed)) {
        EXPECT_GE(r.time_s, 0.0);
        EXPECT_LE(r.time_s, expander_.params().window_s);
      }
    }
  }
}

TEST_F(TimelineTest, EventsCarryTheBaseAddress) {
  for (const MceRecord& r : Expand(PatternShape::kSingleRowCluster, 3)) {
    EXPECT_EQ(r.address.node, 1u);
    EXPECT_EQ(r.address.bank, 2u);
    EXPECT_LT(r.address.row, topology_.rows_per_bank);
    EXPECT_LT(r.address.col, topology_.cols_per_bank);
  }
}

TEST_F(TimelineTest, UerBanksEmitUers) {
  int with_uer = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto events = Expand(PatternShape::kSingleRowCluster, seed);
    with_uer += std::any_of(events.begin(), events.end(),
                            [](const MceRecord& r) {
                              return r.type == ErrorType::kUer;
                            });
  }
  // A few plans can schedule their first failure beyond the window; the
  // vast majority must materialize.
  EXPECT_GE(with_uer, 25);
}

TEST_F(TimelineTest, SuddenRowRatioIsCalibrated) {
  // Count UER rows with an in-row precursor (CE/UEO in the same row
  // strictly before the row's first UER).
  std::size_t sudden = 0, non_sudden = 0;
  for (std::uint64_t seed = 0; seed < 1500; ++seed) {
    const auto events = Expand(PatternShape::kSingleRowCluster, seed);
    std::map<std::uint32_t, double> first_uer;
    for (const MceRecord& r : events) {
      if (r.type == ErrorType::kUer && !first_uer.contains(r.address.row)) {
        first_uer[r.address.row] = r.time_s;
      }
    }
    for (const auto& [row, t] : first_uer) {
      bool precursor = false;
      for (const MceRecord& r : events) {
        if (r.type != ErrorType::kUer && r.address.row == row && r.time_s < t) {
          precursor = true;
          break;
        }
      }
      (precursor ? non_sudden : sudden) += 1;
    }
  }
  const double ratio =
      static_cast<double>(sudden) / static_cast<double>(sudden + non_sudden);
  // Paper Table I: 95.61% sudden at row level.
  EXPECT_NEAR(ratio, 0.9561, 0.02);
}

TEST_F(TimelineTest, AmbientPrecursorProbControlsBankPredictability) {
  auto measure = [&](double prob) {
    TimelineParams params;
    params.ambient_precursor_prob = prob;
    TimelineExpander expander(topology_, params);
    std::size_t predictable = 0, total = 0;
    for (std::uint64_t seed = 0; seed < 600; ++seed) {
      Rng rng(seed + 5000);
      const auto plan =
          footprints_.Generate(PatternShape::kSingleRowCluster, rng);
      auto events = expander.ExpandBank(plan, Base(), rng);
      std::sort(events.begin(), events.end());
      double first_uer = -1.0;
      for (const MceRecord& r : events) {
        if (r.type == ErrorType::kUer) {
          first_uer = r.time_s;
          break;
        }
      }
      if (first_uer < 0.0) continue;
      ++total;
      predictable += std::any_of(
          events.begin(), events.end(), [&](const MceRecord& r) {
            return r.type != ErrorType::kUer && r.time_s < first_uer;
          });
    }
    return static_cast<double>(predictable) / static_cast<double>(total);
  };
  const double low = measure(0.0);
  const double high = measure(0.9);
  EXPECT_LT(low, 0.25);  // only in-row precursors remain
  EXPECT_GT(high, 0.75);
  EXPECT_GT(high, low + 0.4);
}

struct MeanAccumulator {
  double sum = 0.0;
  std::size_t n = 0;
  void Add(double v) {
    sum += v;
    ++n;
  }
  double mean() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
};

TEST_F(TimelineTest, ClusterShapesFailFasterThanScattered) {
  auto mean_uer_gap = [&](PatternShape shape) {
    MeanAccumulator stats;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
      const auto events = Expand(shape, seed);
      double prev = -1.0;
      for (const MceRecord& r : events) {
        if (r.type != ErrorType::kUer) continue;
        if (prev >= 0.0) stats.Add(r.time_s - prev);
        prev = r.time_s;
      }
    }
    return stats.mean();
  };
  EXPECT_LT(mean_uer_gap(PatternShape::kSingleRowCluster),
            mean_uer_gap(PatternShape::kScattered));
}

TEST_F(TimelineTest, RejectsInvalidParams) {
  TimelineParams params;
  params.window_s = 0.0;
  EXPECT_THROW(TimelineExpander(topology_, params), ContractViolation);
  TimelineParams params2;
  params2.sudden_row_prob = 1.5;
  EXPECT_THROW(TimelineExpander(topology_, params2), ContractViolation);
}

}  // namespace
}  // namespace cordial::trace
