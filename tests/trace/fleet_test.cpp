#include "trace/fleet.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/empirical.hpp"
#include "common/check.hpp"
#include "hbm/address.hpp"

namespace cordial::trace {
namespace {

GeneratedFleet SmallFleet(std::uint64_t seed, double scale = 0.05) {
  hbm::TopologyConfig topology;
  CalibrationProfile profile;
  profile.scale = scale;
  FleetGenerator generator(topology, profile);
  return generator.Generate(seed);
}

TEST(Fleet, DeterministicGivenSeed) {
  const GeneratedFleet a = SmallFleet(5);
  const GeneratedFleet b = SmallFleet(5);
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); i += 37) {
    EXPECT_EQ(a.log.records()[i], b.log.records()[i]);
  }
  ASSERT_EQ(a.banks.size(), b.banks.size());
}

TEST(Fleet, DifferentSeedsDiffer) {
  const GeneratedFleet a = SmallFleet(5);
  const GeneratedFleet b = SmallFleet(6);
  EXPECT_NE(a.log.size(), b.log.size());
}

TEST(Fleet, LogIsTimeSorted) {
  const GeneratedFleet fleet = SmallFleet(7);
  double prev = 0.0;
  for (const MceRecord& r : fleet.log.records()) {
    EXPECT_GE(r.time_s, prev);
    prev = r.time_s;
  }
}

TEST(Fleet, BankIndexIsConsistent) {
  const GeneratedFleet fleet = SmallFleet(8);
  hbm::AddressCodec codec(fleet.topology);
  for (const BankTruth& truth : fleet.banks) {
    EXPECT_EQ(codec.BankKey(truth.base), truth.bank_key);
    const BankTruth* found = fleet.FindBank(truth.bank_key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->bank_key, truth.bank_key);
  }
  EXPECT_EQ(fleet.FindBank(0xffffffffffffULL), nullptr);
}

TEST(Fleet, TruthClassMatchesShapeCollapse) {
  const GeneratedFleet fleet = SmallFleet(9);
  for (const BankTruth& truth : fleet.banks) {
    EXPECT_EQ(truth.failure_class, hbm::CollapseToClass(truth.shape));
    if (truth.shape == hbm::PatternShape::kCeOnly) {
      EXPECT_TRUE(truth.planned_uer_rows.empty());
    } else {
      EXPECT_FALSE(truth.planned_uer_rows.empty());
    }
  }
}

TEST(Fleet, EveryLogRecordBelongsToAKnownBank) {
  const GeneratedFleet fleet = SmallFleet(10);
  hbm::AddressCodec codec(fleet.topology);
  for (std::size_t i = 0; i < fleet.log.size(); i += 11) {
    const MceRecord& r = fleet.log.records()[i];
    EXPECT_NE(fleet.FindBank(codec.BankKey(r.address)), nullptr);
  }
}

TEST(Fleet, ScaleControlsSize) {
  const GeneratedFleet small = SmallFleet(11, 0.02);
  const GeneratedFleet large = SmallFleet(11, 0.10);
  EXPECT_GT(large.banks.size(), small.banks.size() * 3);
}

TEST(Fleet, ProfileValidation) {
  CalibrationProfile bad;
  bad.scale = 0.0;
  EXPECT_THROW(bad.Validate(), ContractViolation);
  CalibrationProfile bad_mix;
  bad_mix.mix_single = 0.9;  // mix no longer sums to 1
  EXPECT_THROW(bad_mix.Validate(), ContractViolation);
}

// ---- read-disturb mix ----

GeneratedFleet ReadDisturbFleet(std::uint64_t seed, double scale = 0.05) {
  hbm::TopologyConfig topology;
  CalibrationProfile profile;
  profile.scale = scale;
  const double keep = 0.85;
  profile.mix_single *= keep;
  profile.mix_double *= keep;
  profile.mix_half *= keep;
  profile.mix_scattered *= keep;
  profile.mix_column *= keep;
  profile.mix_read_disturb =
      1.0 - (profile.mix_single + profile.mix_double + profile.mix_half +
             profile.mix_scattered + profile.mix_column);
  FleetGenerator generator(topology, profile);
  return generator.Generate(seed);
}

TEST(ReadDisturbFleet, MixProducesReadDisturbBanksWithSaneTruth) {
  const GeneratedFleet fleet = ReadDisturbFleet(5, 0.2);
  std::size_t read_disturb = 0;
  for (const BankTruth& truth : fleet.banks) {
    if (truth.shape != hbm::PatternShape::kReadDisturb) continue;
    ++read_disturb;
    EXPECT_EQ(truth.failure_class, hbm::FailureClass::kSingleRowClustering);
    EXPECT_GE(truth.planned_uer_rows.size(), 3u);
  }
  // ~15% of UER banks at this scale: dozens, not a handful.
  EXPECT_GT(read_disturb, 10u);
}

TEST(ReadDisturbFleet, ZeroMixKeepsHistoricalFleetsBitIdentical) {
  // The default profile has mix_read_disturb == 0 and appends its weight
  // last, so pre-existing fleets regenerate byte-for-byte.
  CalibrationProfile defaults;
  EXPECT_EQ(defaults.mix_read_disturb, 0.0);
  const GeneratedFleet fleet = SmallFleet(5);
  for (const BankTruth& truth : fleet.banks) {
    EXPECT_NE(truth.shape, hbm::PatternShape::kReadDisturb);
  }
}

TEST(ReadDisturbFleet, NegativeMixFailsValidation) {
  CalibrationProfile bad;
  bad.mix_read_disturb = -0.1;
  EXPECT_THROW(bad.Validate(), ContractViolation);
}

// ---- row remapping ----

TEST(RowMappingFleet, SameSeedSamePhysicalFleetAcrossMappings) {
  hbm::TopologyConfig topology;
  CalibrationProfile profile;
  profile.scale = 0.05;
  const hbm::RowMapping mapping =
      hbm::RowMapping::BitSwizzle(topology.rows_per_bank, 3);
  const GeneratedFleet identity =
      FleetGenerator(topology, profile).Generate(5);
  const GeneratedFleet swizzled =
      FleetGenerator(topology, profile, {}, {}, mapping).Generate(5);

  EXPECT_TRUE(identity.row_mapping.identity());
  EXPECT_FALSE(swizzled.row_mapping.identity());
  // Remapping consumes no randomness: descrambling the swizzled log must
  // recover the identity log exactly (in canonical order — equal-time ties
  // were sorted by logical row).
  ErrorLog descrambled = RemapLogRowsToPhysical(swizzled.log, mapping);
  descrambled.Sort();
  ASSERT_EQ(descrambled.size(), identity.log.size());
  for (std::size_t i = 0; i < identity.log.size(); ++i) {
    EXPECT_EQ(descrambled.records()[i], identity.log.records()[i]);
  }
}

TEST(RowMappingFleet, TruthRowsAreLogical) {
  hbm::TopologyConfig topology;
  CalibrationProfile profile;
  profile.scale = 0.05;
  const hbm::RowMapping mapping =
      hbm::RowMapping::BitSwizzle(topology.rows_per_bank, 3);
  const GeneratedFleet swizzled =
      FleetGenerator(topology, profile, {}, {}, mapping).Generate(5);
  hbm::AddressCodec codec(topology);
  // Ground truth speaks the same (logical) coordinate language as the log:
  // every planned UER row must actually appear as a logged UER row.
  for (const BankTruth& truth : swizzled.banks) {
    if (truth.planned_uer_rows.empty()) continue;
    std::set<std::uint32_t> logged;
    for (const MceRecord& r : swizzled.log.records()) {
      if (r.type == hbm::ErrorType::kUer &&
          codec.BankKey(r.address) == truth.bank_key) {
        logged.insert(r.address.row);
      }
    }
    for (std::uint32_t row : truth.planned_uer_rows) {
      EXPECT_TRUE(logged.count(row))
          << "planned UER row " << row << " never logged";
    }
  }
}

TEST(RowMappingFleet, RemapHelpersAreInverses) {
  const GeneratedFleet fleet = SmallFleet(7);
  const hbm::RowMapping mapping =
      hbm::RowMapping::Shuffle(fleet.topology.rows_per_bank, 11);
  const ErrorLog there = RemapLogRowsToLogical(fleet.log, mapping);
  const ErrorLog back = RemapLogRowsToPhysical(there, mapping);
  ASSERT_EQ(back.size(), fleet.log.size());
  for (std::size_t i = 0; i < back.size(); i += 13) {
    EXPECT_EQ(back.records()[i], fleet.log.records()[i]);
  }
}

TEST(RowMappingFleet, GeneratorRejectsMismatchedMapping) {
  hbm::TopologyConfig topology;
  const hbm::RowMapping wrong = hbm::RowMapping::Shuffle(64, 1);
  EXPECT_THROW(FleetGenerator(topology, {}, {}, {}, wrong),
               ContractViolation);
}

// ---- Calibration against the paper's published marginals ----

class FleetCalibrationTest : public ::testing::Test {
 protected:
  static const GeneratedFleet& Fleet() {
    static const GeneratedFleet fleet = SmallFleet(42, 0.5);
    return fleet;
  }
};

TEST_F(FleetCalibrationTest, PatternMixMatchesFig3b) {
  std::map<hbm::PatternShape, double> counts;
  double total = 0.0;
  for (const BankTruth& truth : Fleet().banks) {
    if (truth.shape == hbm::PatternShape::kCeOnly) continue;
    counts[truth.shape] += 1.0;
    total += 1.0;
  }
  ASSERT_GT(total, 200.0);
  EXPECT_NEAR(counts[hbm::PatternShape::kSingleRowCluster] / total, 0.682, 0.05);
  EXPECT_NEAR(counts[hbm::PatternShape::kDoubleRowCluster] / total, 0.099, 0.04);
  EXPECT_NEAR(counts[hbm::PatternShape::kHalfTotalRowCluster] / total, 0.073,
              0.04);
  EXPECT_NEAR(counts[hbm::PatternShape::kScattered] / total, 0.125, 0.04);
  EXPECT_NEAR(counts[hbm::PatternShape::kWholeColumn] / total, 0.021, 0.02);
}

TEST_F(FleetCalibrationTest, SuddenRowRatioMatchesTableI) {
  hbm::AddressCodec codec(Fleet().topology);
  const auto rows = analysis::ComputeSuddenUerStudy(Fleet().log, codec);
  const auto& row_level = rows.back();
  ASSERT_EQ(row_level.level, hbm::Level::kRow);
  // Paper: 4.39% predictable at row level.
  EXPECT_NEAR(row_level.PredictableRatio(), 0.0439, 0.02);
}

TEST_F(FleetCalibrationTest, PredictabilityRisesTowardCoarseLevels) {
  hbm::AddressCodec codec(Fleet().topology);
  const auto rows = analysis::ComputeSuddenUerStudy(Fleet().log, codec);
  ASSERT_EQ(rows.size(), 7u);
  const double npu = rows[0].PredictableRatio();
  const double bank = rows[5].PredictableRatio();
  const double row = rows[6].PredictableRatio();
  // Paper Table I: 41.86% (NPU) > 29.23% (bank) >> 4.39% (row).
  EXPECT_GT(npu, bank + 0.03);
  EXPECT_GT(bank, row + 0.15);
  EXPECT_NEAR(bank, 0.2923, 0.08);
  EXPECT_NEAR(npu, 0.4186, 0.10);
}

TEST_F(FleetCalibrationTest, UerRowsPerBankMatchesTableII) {
  hbm::AddressCodec codec(Fleet().topology);
  const auto summary = analysis::ComputeDatasetSummary(Fleet().log, codec);
  const auto& bank_row = summary[5];
  const auto& row_row = summary[6];
  ASSERT_EQ(bank_row.level, hbm::Level::kBank);
  ASSERT_EQ(row_row.level, hbm::Level::kRow);
  const double rows_per_bank = static_cast<double>(row_row.with_uer) /
                               static_cast<double>(bank_row.with_uer);
  // Paper Table II: 5209 UER rows / 1074 UER banks = 4.85.
  EXPECT_NEAR(rows_per_bank, 4.85, 1.5);
}

TEST_F(FleetCalibrationTest, EntityCountsCompressTowardCoarseLevels) {
  hbm::AddressCodec codec(Fleet().topology);
  const auto summary = analysis::ComputeDatasetSummary(Fleet().log, codec);
  // with_uer must be non-decreasing from NPU (coarse) to row (fine).
  for (std::size_t i = 1; i < summary.size(); ++i) {
    EXPECT_GE(summary[i].with_uer, summary[i - 1].with_uer)
        << "level " << hbm::LevelName(summary[i].level);
  }
  // Banks-per-BG compression in the paper: 1074/686 ~ 1.57.
  const double banks_per_bg = static_cast<double>(summary[5].with_uer) /
                              static_cast<double>(summary[4].with_uer);
  EXPECT_NEAR(banks_per_bg, 1.57, 0.35);
}

TEST_F(FleetCalibrationTest, CeBanksVastlyOutnumberUerBanks) {
  hbm::AddressCodec codec(Fleet().topology);
  const auto summary = analysis::ComputeDatasetSummary(Fleet().log, codec);
  const auto& bank_row = summary[5];
  // Paper Table II: 8557 CE banks vs 1074 UER banks (~8x).
  EXPECT_GT(bank_row.with_ce, bank_row.with_uer * 5);
}

}  // namespace
}  // namespace cordial::trace
