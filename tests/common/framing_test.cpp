// Versioned magic + length framing: the loader must tell apart "not our
// file", "wrong version", and "truncated" — and the token codec must
// round-trip doubles bit-exactly.
#include "common/framing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace cordial {
namespace {

TEST(Framing, RoundTripsPayloadVerbatim) {
  std::ostringstream out;
  const std::string payload = "line one\nline two with spaces\n\x01\x02 raw";
  WriteFramed(out, "test_magic", 3, payload);
  std::istringstream in(out.str());
  EXPECT_EQ(ReadFramed(in, "test_magic", 3), payload);
}

TEST(Framing, EmptyPayloadRoundTrips) {
  std::ostringstream out;
  WriteFramed(out, "empty_frame", 1, "");
  std::istringstream in(out.str());
  EXPECT_EQ(ReadFramed(in, "empty_frame", 1), "");
}

TEST(Framing, FramesNest) {
  std::ostringstream inner;
  WriteFramed(inner, "inner", 1, "payload");
  std::ostringstream outer;
  WriteFramed(outer, "outer", 2, inner.str());
  std::istringstream in(outer.str());
  std::istringstream nested(ReadFramed(in, "outer", 2));
  EXPECT_EQ(ReadFramed(nested, "inner", 1), "payload");
}

TEST(Framing, ConsecutiveFramesReadInOrder) {
  std::ostringstream out;
  WriteFramed(out, "frame", 1, "first");
  WriteFramed(out, "frame", 1, "second");
  std::istringstream in(out.str());
  EXPECT_EQ(PeekMagic(in), "frame");
  EXPECT_EQ(ReadFramed(in, "frame", 1), "first");
  EXPECT_EQ(ReadFramed(in, "frame", 1), "second");
  EXPECT_EQ(PeekMagic(in), "");
}

TEST(Framing, RejectsWrongMagic) {
  std::ostringstream out;
  WriteFramed(out, "actual_magic", 1, "x");
  std::istringstream in(out.str());
  EXPECT_THROW(ReadFramed(in, "expected_magic", 1), ParseError);
}

TEST(Framing, RejectsVersionMismatchWithClearMessage) {
  std::ostringstream out;
  WriteFramed(out, "magic", 7, "x");
  std::istringstream in(out.str());
  try {
    ReadFramed(in, "magic", 1);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("v7"), std::string::npos) << what;
    EXPECT_NE(what.find("v1"), std::string::npos) << what;
  }
}

TEST(Framing, RejectsTruncatedPayload) {
  std::ostringstream out;
  WriteFramed(out, "magic", 1, "a full payload");
  const std::string whole = out.str();
  std::istringstream in(whole.substr(0, whole.size() - 5));
  EXPECT_THROW(ReadFramed(in, "magic", 1), ParseError);
}

TEST(Framing, RejectsEmptyAndGarbageStreams) {
  std::istringstream empty("");
  EXPECT_THROW(ReadFramed(empty, "magic", 1), ParseError);
  std::istringstream garbage("not a frame at all");
  EXPECT_THROW(ReadFramed(garbage, "magic", 1), ParseError);
  std::istringstream bad_header("magic vX 10\n0123456789");
  EXPECT_THROW(ReadFramed(bad_header, "magic", 1), ParseError);
}

TEST(Framing, DoubleTokensRoundTripBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           6.02214076e23,
                           -2.2250738585072014e-308,
                           123456789.123456789,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::denorm_min()};
  for (const double v : values) {
    std::ostringstream out;
    WriteDoubleToken(out, v);
    std::istringstream in(out.str());
    const double back = ReadDoubleToken(in, "test");
    EXPECT_EQ(std::signbit(back), std::signbit(v));
    EXPECT_EQ(back, v);
  }
}

TEST(Framing, CorruptLengthIsParseErrorNotBadAlloc) {
  // A flipped bit in the byte count must be rejected before allocation: a
  // huge promised length used to throw bad_alloc/length_error and could
  // OOM the daemon.
  std::istringstream absurd("magic v1 123456789012345678\npayload");
  EXPECT_THROW(ReadFramed(absurd, "magic", 1), ParseError);

  // Over the hard cap even if the stream were big enough.
  std::istringstream over_cap(
      "magic v1 " + std::to_string(kMaxFramePayloadBytes + 1) + "\nx");
  EXPECT_THROW(ReadFramed(over_cap, "magic", 1), ParseError);

  // Seekable stream: a length larger than the remaining bytes is rejected
  // up front as truncation.
  std::istringstream longer("magic v1 1000\nonly a few bytes");
  try {
    ReadFramed(longer, "magic", 1);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(Framing, ChecksumMismatchIsRejectedWithClearMessage) {
  std::ostringstream out;
  WriteFramed(out, "magic", 1, "a payload worth protecting");
  std::string bytes = out.str();
  bytes[bytes.size() - 3] ^= 0x10;  // flip one payload bit
  std::istringstream in(bytes);
  try {
    ReadFramed(in, "magic", 1);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(Framing, LegacyChecksumlessFramesStillReadWithCount) {
  // Layout v1, as written by pre-CRC builds: no crc32 field. Must still
  // load (old checkpoints stay restorable) and be tallied.
  const std::string payload = "legacy payload";
  std::ostringstream out;
  out << "magic v3 " << payload.size() << '\n' << payload;
  const std::uint64_t legacy_before = GetFramingStats().legacy_frames_read;
  std::istringstream in(out.str());
  EXPECT_EQ(ReadFramed(in, "magic", 3), payload);
  EXPECT_EQ(GetFramingStats().legacy_frames_read, legacy_before + 1);
}

TEST(Framing, MalformedChecksumFieldIsNotDemotedToLegacy) {
  // Anything after the byte count other than a well-formed crc32 token is
  // a corrupt header — a bit flip inside the checksum field must not turn
  // a protected frame into an unchecked one.
  const std::string payload = "x";
  for (const std::string tail :
       {" crc32=xyz", " crc32=1234567", " crc32=123456789", " crcZZ=12345678",
        " 12345678", "  crc32=12345678"}) {
    std::ostringstream out;
    out << "magic v1 " << payload.size() << tail << '\n' << payload;
    std::istringstream in(out.str());
    EXPECT_THROW(ReadFramed(in, "magic", 1), ParseError) << tail;
  }
}

TEST(Framing, ChecksummedFramesAreCounted) {
  const std::uint64_t before = GetFramingStats().checksummed_frames_read;
  std::ostringstream out;
  WriteFramed(out, "magic", 1, "counted");
  std::istringstream in(out.str());
  EXPECT_EQ(ReadFramed(in, "magic", 1), "counted");
  EXPECT_EQ(GetFramingStats().checksummed_frames_read, before + 1);
}

TEST(Framing, Crc32MatchesKnownVectors) {
  // The standard IEEE 802.3 check value, so the on-disk format is the
  // zlib/PNG CRC and not some homegrown variant.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST(Framing, ReadFailpointInjectsParseError) {
  std::ostringstream out;
  WriteFramed(out, "magic", 1, "fine payload");
  failpoint::Arm("common.framing.read");
  std::istringstream armed(out.str());
  EXPECT_THROW(ReadFramed(armed, "magic", 1), ParseError);
  failpoint::DisarmAll();
  std::istringstream disarmed(out.str());
  EXPECT_EQ(ReadFramed(disarmed, "magic", 1), "fine payload");
}

TEST(Framing, NonFiniteDoublesRoundTripExplicitly) {
  // A non-finite stat used to serialize as a token operator>> rejects,
  // poisoning a checkpoint that then failed to restore.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double v : {nan, -nan, inf, -inf}) {
    std::ostringstream out;
    WriteDoubleToken(out, v);
    std::istringstream in(out.str());
    const double back = ReadDoubleToken(in, "test");
    EXPECT_EQ(std::isnan(back), std::isnan(v)) << out.str();
    EXPECT_EQ(std::isinf(back), std::isinf(v)) << out.str();
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << out.str();
  }
}

TEST(Framing, TokenReadersRejectMalformedInput) {
  std::istringstream not_num("zebra");
  EXPECT_THROW(ReadU64Token(not_num, "ctx"), ParseError);
  std::istringstream not_dbl("??");
  EXPECT_THROW(ReadDoubleToken(not_dbl, "ctx"), ParseError);
  std::istringstream empty("");
  EXPECT_THROW(ReadI64Token(empty, "ctx"), ParseError);
  std::istringstream wrong("alpha");
  EXPECT_THROW(ExpectToken(wrong, "beta"), ParseError);
}

}  // namespace
}  // namespace cordial
