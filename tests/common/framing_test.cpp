// Versioned magic + length framing: the loader must tell apart "not our
// file", "wrong version", and "truncated" — and the token codec must
// round-trip doubles bit-exactly.
#include "common/framing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace cordial {
namespace {

TEST(Framing, RoundTripsPayloadVerbatim) {
  std::ostringstream out;
  const std::string payload = "line one\nline two with spaces\n\x01\x02 raw";
  WriteFramed(out, "test_magic", 3, payload);
  std::istringstream in(out.str());
  EXPECT_EQ(ReadFramed(in, "test_magic", 3), payload);
}

TEST(Framing, EmptyPayloadRoundTrips) {
  std::ostringstream out;
  WriteFramed(out, "empty_frame", 1, "");
  std::istringstream in(out.str());
  EXPECT_EQ(ReadFramed(in, "empty_frame", 1), "");
}

TEST(Framing, FramesNest) {
  std::ostringstream inner;
  WriteFramed(inner, "inner", 1, "payload");
  std::ostringstream outer;
  WriteFramed(outer, "outer", 2, inner.str());
  std::istringstream in(outer.str());
  std::istringstream nested(ReadFramed(in, "outer", 2));
  EXPECT_EQ(ReadFramed(nested, "inner", 1), "payload");
}

TEST(Framing, ConsecutiveFramesReadInOrder) {
  std::ostringstream out;
  WriteFramed(out, "frame", 1, "first");
  WriteFramed(out, "frame", 1, "second");
  std::istringstream in(out.str());
  EXPECT_EQ(PeekMagic(in), "frame");
  EXPECT_EQ(ReadFramed(in, "frame", 1), "first");
  EXPECT_EQ(ReadFramed(in, "frame", 1), "second");
  EXPECT_EQ(PeekMagic(in), "");
}

TEST(Framing, RejectsWrongMagic) {
  std::ostringstream out;
  WriteFramed(out, "actual_magic", 1, "x");
  std::istringstream in(out.str());
  EXPECT_THROW(ReadFramed(in, "expected_magic", 1), ParseError);
}

TEST(Framing, RejectsVersionMismatchWithClearMessage) {
  std::ostringstream out;
  WriteFramed(out, "magic", 7, "x");
  std::istringstream in(out.str());
  try {
    ReadFramed(in, "magic", 1);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("v7"), std::string::npos) << what;
    EXPECT_NE(what.find("v1"), std::string::npos) << what;
  }
}

TEST(Framing, RejectsTruncatedPayload) {
  std::ostringstream out;
  WriteFramed(out, "magic", 1, "a full payload");
  const std::string whole = out.str();
  std::istringstream in(whole.substr(0, whole.size() - 5));
  EXPECT_THROW(ReadFramed(in, "magic", 1), ParseError);
}

TEST(Framing, RejectsEmptyAndGarbageStreams) {
  std::istringstream empty("");
  EXPECT_THROW(ReadFramed(empty, "magic", 1), ParseError);
  std::istringstream garbage("not a frame at all");
  EXPECT_THROW(ReadFramed(garbage, "magic", 1), ParseError);
  std::istringstream bad_header("magic vX 10\n0123456789");
  EXPECT_THROW(ReadFramed(bad_header, "magic", 1), ParseError);
}

TEST(Framing, DoubleTokensRoundTripBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           6.02214076e23,
                           -2.2250738585072014e-308,
                           123456789.123456789,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::denorm_min()};
  for (const double v : values) {
    std::ostringstream out;
    WriteDoubleToken(out, v);
    std::istringstream in(out.str());
    const double back = ReadDoubleToken(in, "test");
    EXPECT_EQ(std::signbit(back), std::signbit(v));
    EXPECT_EQ(back, v);
  }
}

TEST(Framing, TokenReadersRejectMalformedInput) {
  std::istringstream not_num("zebra");
  EXPECT_THROW(ReadU64Token(not_num, "ctx"), ParseError);
  std::istringstream not_dbl("??");
  EXPECT_THROW(ReadDoubleToken(not_dbl, "ctx"), ParseError);
  std::istringstream empty("");
  EXPECT_THROW(ReadI64Token(empty, "ctx"), ParseError);
  std::istringstream wrong("alpha");
  EXPECT_THROW(ExpectToken(wrong, "beta"), ParseError);
}

}  // namespace
}  // namespace cordial
