// The lock-free ring under the serving hot path. Sequential tests pin the
// exact-capacity / FIFO / wraparound contract the overload policies depend
// on; the concurrent tests are written to run under TSan (tier1 extends the
// TSan regex to ^MpscRing) — they hammer the acquire/release slot protocol
// with multiple producers, concurrent MPMC pops (the drop-oldest eviction
// race) and the ParkingSpot wait/notify pairing.
#include "common/mpsc_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace cordial {
namespace {

TEST(MpscRing, RejectsZeroCapacity) {
  EXPECT_THROW(MpscRing<int>(0), ContractViolation);
}

TEST(MpscRing, PushPopIsFifo) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(int(i)));
  EXPECT_EQ(ring.ApproxSize(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.ApproxEmpty());
  EXPECT_FALSE(ring.TryPop(out));
}

TEST(MpscRing, CapacityIsExactAndPushFailureKeepsValue) {
  // Both power-of-two (mask path) and odd (modulo path) capacities bound at
  // exactly `capacity` — the overload policies count on it.
  for (const std::size_t capacity : {1u, 2u, 4u, 3u, 7u}) {
    MpscRing<std::vector<int>> ring(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
      std::vector<int> v{static_cast<int>(i)};
      EXPECT_TRUE(ring.TryPush(std::move(v)));
    }
    std::vector<int> extra{42};
    EXPECT_FALSE(ring.TryPush(std::move(extra)));
    // The failed push must not have consumed the value.
    ASSERT_EQ(extra.size(), 1u);
    EXPECT_EQ(extra[0], 42);
    std::vector<int> out;
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out[0], 0);
    EXPECT_TRUE(ring.TryPush(std::move(extra)));  // one slot freed, one taken
    EXPECT_EQ(ring.ApproxSize(), capacity);
  }
}

TEST(MpscRing, WrapsAroundManyLaps) {
  MpscRing<std::uint64_t> ring(3);  // non-power-of-two: modulo indexing
  std::uint64_t next_in = 0, next_out = 0;
  for (int lap = 0; lap < 100; ++lap) {
    while (ring.TryPush(std::uint64_t(next_in))) ++next_in;
    std::uint64_t out;
    while (ring.TryPop(out)) {
      EXPECT_EQ(out, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_EQ(next_in, 300u);
  EXPECT_EQ(ring.pushed(), 300u);
  EXPECT_EQ(ring.popped(), 300u);
}

TEST(MpscRing, BatchPushClaimsContiguousRunInOrder) {
  MpscRing<int> ring(8);
  int items[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.TryPushBatch(items, 6), 6u);
  EXPECT_EQ(ring.ApproxSize(), 6u);
  int more[4] = {6, 7, 8, 9};
  // Only two slots left: a partial claim takes what fits, in order.
  EXPECT_EQ(ring.TryPushBatch(more, 4), 2u);
  EXPECT_EQ(ring.ApproxSize(), 8u);
  int full[1] = {99};
  EXPECT_EQ(ring.TryPushBatch(full, 1), 0u);
  for (int expect = 0; expect < 8; ++expect) {
    int out = -1;
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(MpscRing, BatchPushLargerThanCapacityTakesCapacity) {
  MpscRing<int> ring(4);
  int items[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(ring.TryPushBatch(items, 10), 4u);
  int out = -1;
  for (int expect = 0; expect < 4; ++expect) {
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(MpscRing, BatchPopDrainsFifo) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) ring.TryPush(int(i));
  int out[8] = {};
  EXPECT_EQ(ring.TryPopBatch(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.TryPopBatch(out, 8), 2u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(ring.TryPopBatch(out, 8), 0u);
}

TEST(MpscRing, PoppableNowTracksHeadSlot) {
  MpscRing<int> ring(2);
  EXPECT_FALSE(ring.PoppableNow());
  ring.TryPush(1);
  EXPECT_TRUE(ring.PoppableNow());
  int out;
  ring.TryPop(out);
  EXPECT_FALSE(ring.PoppableNow());
}

// Multiple producers, one consumer: every element arrives exactly once and
// each producer's own elements stay in that producer's order (the per-bank
// FIFO property sharded determinism rests on). Values encode
// producer*1M + sequence so per-producer order is checkable after the fact.
TEST(MpscRing, MultiProducerStressKeepsPerProducerOrder) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  MpscRing<std::uint64_t> ring(64);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t value = p * 1000000 + i;
        while (!ring.TryPush(std::move(value))) CpuRelax();
      }
    });
  }
  std::vector<std::uint64_t> seen;
  seen.reserve(kProducers * kPerProducer);
  while (seen.size() < kProducers * kPerProducer) {
    std::uint64_t out;
    if (ring.TryPop(out)) {
      seen.push_back(out);
    } else {
      CpuRelax();
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(ring.ApproxEmpty());
  std::map<std::uint64_t, std::uint64_t> next_per_producer;
  for (const std::uint64_t value : seen) {
    const std::uint64_t p = value / 1000000;
    EXPECT_EQ(value % 1000000, next_per_producer[p]++);
  }
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_per_producer[p], kPerProducer);
  }
}

// Batched producers racing single-pop consumers: batch claims interleave
// but each batch's run stays contiguous in pop order per producer.
TEST(MpscRing, BatchedProducersStress) {
  constexpr std::size_t kProducers = 3;
  constexpr std::uint64_t kPerProducer = 1500;
  constexpr std::size_t kBatch = 7;
  MpscRing<std::uint64_t> ring(32);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      std::uint64_t next = 0;
      std::uint64_t buf[kBatch];
      while (next < kPerProducer) {
        std::size_t n = 0;
        while (n < kBatch && next + n < kPerProducer) {
          buf[n] = p * 1000000 + next + n;
          ++n;
        }
        std::size_t off = 0;
        while (off < n) {
          const std::size_t pushed = ring.TryPushBatch(buf + off, n - off);
          if (pushed == 0) {
            CpuRelax();
          } else {
            off += pushed;
          }
        }
        next += n;
      }
    });
  }
  std::vector<std::uint64_t> next_expected(kProducers, 0);
  std::uint64_t total = 0;
  while (total < kProducers * kPerProducer) {
    std::uint64_t out;
    if (!ring.TryPop(out)) {
      CpuRelax();
      continue;
    }
    const std::uint64_t p = out / 1000000;
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(out % 1000000, next_expected[p]++);
    ++total;
  }
  for (auto& t : producers) t.join();
}

// The drop-oldest race: producers evict the head themselves while the
// consumer drains. Checks conservation (pushed == popped-by-someone) under
// concurrent MPMC pops; TSan checks the slot protocol.
TEST(MpscRing, ConcurrentPopsFromProducersAndConsumer) {
  constexpr std::size_t kProducers = 3;
  constexpr std::uint64_t kPerProducer = 1200;
  MpscRing<std::uint64_t> ring(8);
  std::atomic<std::uint64_t> evicted{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t value = i;
        while (!ring.TryPush(std::move(value))) {
          std::uint64_t victim;
          if (ring.TryPop(victim)) {
            evicted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::atomic<bool> done{false};
  std::uint64_t consumed = 0;
  std::thread consumer([&] {
    std::uint64_t out;
    for (;;) {
      if (ring.TryPop(out)) {
        ++consumed;
        continue;
      }
      if (done.load(std::memory_order_acquire)) return;
      CpuRelax();
    }
  });
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  std::uint64_t leftover = 0;
  std::uint64_t out;
  while (ring.TryPop(out)) ++leftover;
  EXPECT_EQ(evicted.load() + consumed + leftover, kProducers * kPerProducer);
  EXPECT_EQ(ring.pushed(), ring.popped());
}

// ParkingSpot never loses the wakeup: a waiter that registered before the
// notifier's state change either skips the park (epoch moved) or is woken.
TEST(MpscRing, ParkingSpotWakesParkedWaiter) {
  ParkingSpot spot;
  std::atomic<bool> flag{false};
  std::thread waiter([&] {
    while (!flag.load(std::memory_order_acquire)) {
      const std::uint64_t epoch = spot.PrepareWait();
      if (flag.load(std::memory_order_acquire)) {
        spot.CancelWait();
        break;
      }
      spot.Wait(epoch);
    }
  });
  flag.store(true, std::memory_order_release);
  spot.Notify();
  waiter.join();  // must terminate — a lost wakeup hangs the test
  SUCCEED();
}

TEST(MpscRing, ParkingSpotNotifyWithNoWaitersIsCheapNoop) {
  ParkingSpot spot;
  for (int i = 0; i < 1000; ++i) spot.Notify();
  // And a later waiter still works.
  std::atomic<bool> flag{false};
  std::thread waiter([&] {
    for (;;) {
      const std::uint64_t epoch = spot.PrepareWait();
      if (flag.load(std::memory_order_acquire)) {
        spot.CancelWait();
        return;
      }
      spot.Wait(epoch);
    }
  });
  flag.store(true, std::memory_order_release);
  spot.Notify();
  waiter.join();
  SUCCEED();
}

}  // namespace
}  // namespace cordial
