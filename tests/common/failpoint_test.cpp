// Fault-injection registry: unarmed sites must be free (no registry
// lookup), and skip/count arithmetic decides exactly which hits fail.
#include "common/failpoint.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/check.hpp"

namespace cordial::failpoint {
namespace {

// Every test leaves the registry clean so ordering cannot matter.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedNeverFails) {
  EXPECT_FALSE(AnyArmed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ShouldFail("test.never_armed"));
  }
  // An unarmed site is not even tracked.
  EXPECT_EQ(HitCount("test.never_armed"), 0u);
}

TEST_F(FailpointTest, ArmedFailsEveryHitByDefault) {
  Arm("test.always");
  EXPECT_TRUE(AnyArmed());
  EXPECT_TRUE(ShouldFail("test.always"));
  EXPECT_TRUE(ShouldFail("test.always"));
  EXPECT_TRUE(ShouldFail("test.always"));
  EXPECT_EQ(HitCount("test.always"), 3u);
  // Other names stay unaffected.
  EXPECT_FALSE(ShouldFail("test.other"));
}

TEST_F(FailpointTest, SkipPassesFirstNHits) {
  Arm("test.skip", /*skip=*/2);
  EXPECT_FALSE(ShouldFail("test.skip"));
  EXPECT_FALSE(ShouldFail("test.skip"));
  EXPECT_TRUE(ShouldFail("test.skip"));
  EXPECT_TRUE(ShouldFail("test.skip"));
  EXPECT_EQ(HitCount("test.skip"), 4u);
}

TEST_F(FailpointTest, CountLimitsHowManyTimesItFires) {
  Arm("test.count", /*skip=*/0, /*count=*/2);
  EXPECT_TRUE(ShouldFail("test.count"));
  EXPECT_TRUE(ShouldFail("test.count"));
  // Spent: passes from now on, but the entry stays for HitCount.
  EXPECT_FALSE(ShouldFail("test.count"));
  EXPECT_FALSE(ShouldFail("test.count"));
  EXPECT_EQ(HitCount("test.count"), 4u);
}

TEST_F(FailpointTest, SkipAndCountCompose) {
  // "Fail only the 3rd hit" — the serverd smoke's crash_before_rename=2:1.
  Arm("test.third_only", /*skip=*/2, /*count=*/1);
  EXPECT_FALSE(ShouldFail("test.third_only"));
  EXPECT_FALSE(ShouldFail("test.third_only"));
  EXPECT_TRUE(ShouldFail("test.third_only"));
  EXPECT_FALSE(ShouldFail("test.third_only"));
  EXPECT_FALSE(ShouldFail("test.third_only"));
}

TEST_F(FailpointTest, DisarmStopsOneNameDisarmAllStopsEverything) {
  Arm("test.a");
  Arm("test.b");
  EXPECT_TRUE(ShouldFail("test.a"));
  Disarm("test.a");
  EXPECT_FALSE(ShouldFail("test.a"));
  EXPECT_TRUE(ShouldFail("test.b"));
  DisarmAll();
  EXPECT_FALSE(AnyArmed());
  EXPECT_FALSE(ShouldFail("test.b"));
}

TEST_F(FailpointTest, ArmedNamesListsActiveFailpoints) {
  Arm("test.z");
  Arm("test.a");
  const auto names = ArmedNames();
  ASSERT_EQ(names.size(), 2u);
  // Sorted, so /statusz output is stable.
  EXPECT_EQ(names[0], "test.a");
  EXPECT_EQ(names[1], "test.z");
}

TEST_F(FailpointTest, ArmFromEnvParsesSpecList) {
  ::setenv("CORDIAL_FAILPOINTS", "test.env_a,test.env_b=1,test.env_c=2:3", 1);
  ArmFromEnv();
  ::unsetenv("CORDIAL_FAILPOINTS");

  EXPECT_TRUE(ShouldFail("test.env_a"));

  EXPECT_FALSE(ShouldFail("test.env_b"));  // skip=1
  EXPECT_TRUE(ShouldFail("test.env_b"));

  EXPECT_FALSE(ShouldFail("test.env_c"));  // skip=2
  EXPECT_FALSE(ShouldFail("test.env_c"));
  EXPECT_TRUE(ShouldFail("test.env_c"));  // count=3 firings
  EXPECT_TRUE(ShouldFail("test.env_c"));
  EXPECT_TRUE(ShouldFail("test.env_c"));
  EXPECT_FALSE(ShouldFail("test.env_c"));  // spent
}

TEST_F(FailpointTest, ArmFromEnvWithoutVariableIsANoOp) {
  ::unsetenv("CORDIAL_FAILPOINTS");
  ArmFromEnv();
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, MacroRunsActionOnlyWhenArmed) {
  int fired = 0;
  CORDIAL_FAILPOINT("test.macro", ++fired);
  EXPECT_EQ(fired, 0);
  Arm("test.macro");
  CORDIAL_FAILPOINT("test.macro", ++fired);
  CORDIAL_FAILPOINT("test.macro", ++fired);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace cordial::failpoint
