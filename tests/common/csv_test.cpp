#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial {
namespace {

std::string WriteRows(const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream out;
  CsvWriter writer(out);
  for (const auto& row : rows) writer.WriteRow(row);
  return out.str();
}

std::vector<std::vector<std::string>> ReadBack(const std::string& text) {
  std::istringstream in(text);
  return CsvReader::ReadAll(in);
}

TEST(Csv, SimpleRowRoundTrip) {
  const std::vector<std::vector<std::string>> rows = {{"a", "b", "c"},
                                                      {"1", "2", "3"}};
  EXPECT_EQ(ReadBack(WriteRows(rows)), rows);
}

TEST(Csv, EscapesCommasQuotesAndNewlines) {
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "has,comma", "has\"quote", "has\nnewline", "has\r\nboth"}};
  EXPECT_EQ(ReadBack(WriteRows(rows)), rows);
}

TEST(Csv, EscapeFieldQuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::EscapeField("plain"), "plain");
  EXPECT_EQ(CsvWriter::EscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::EscapeField(""), "");
}

TEST(Csv, EmptyFieldsSurvive) {
  const std::vector<std::vector<std::string>> rows = {{"", "x", ""},
                                                      {"", "", ""}};
  EXPECT_EQ(ReadBack(WriteRows(rows)), rows);
}

TEST(Csv, EmptyInputYieldsNoRows) {
  EXPECT_TRUE(ReadBack("").empty());
}

TEST(Csv, TrailingNewlineDoesNotAddRow) {
  EXPECT_EQ(ReadBack("a,b\n").size(), 1u);
  EXPECT_EQ(ReadBack("a,b\nc,d\n").size(), 2u);
}

TEST(Csv, MissingFinalNewlineStillParses) {
  const auto rows = ReadBack("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, CrLfLineEndings) {
  const auto rows = ReadBack("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(ReadBack("\"never closed"), ParseError);
  EXPECT_THROW(CsvReader::ParseLine("\"nope"), ParseError);
}

TEST(Csv, ParseLineMatchesReadAll) {
  const std::string line = "x,\"y,z\",\"quo\"\"te\",";
  const auto fields = CsvReader::ParseLine(line);
  const auto rows = ReadBack(line + "\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(fields, rows[0]);
  EXPECT_EQ(fields,
            (std::vector<std::string>{"x", "y,z", "quo\"te", ""}));
}

TEST(Csv, RandomizedRoundTripProperty) {
  Rng rng(77);
  const std::string alphabet = "ab,\"\n\r xyz09";
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::vector<std::string>> rows;
    const std::size_t n_rows = 1 + rng.UniformU64(5);
    const std::size_t n_cols = 1 + rng.UniformU64(5);
    for (std::size_t r = 0; r < n_rows; ++r) {
      std::vector<std::string> row;
      for (std::size_t c = 0; c < n_cols; ++c) {
        std::string field;
        const std::size_t len = rng.UniformU64(8);
        for (std::size_t i = 0; i < len; ++i) {
          field.push_back(alphabet[rng.UniformU64(alphabet.size())]);
        }
        row.push_back(std::move(field));
      }
      rows.push_back(std::move(row));
    }
    // A row of all-empty single field is indistinguishable from a blank
    // line; normalize the expectation for that corner.
    const auto parsed = ReadBack(WriteRows(rows));
    std::vector<std::vector<std::string>> expected;
    for (const auto& row : rows) {
      const bool all_empty_single = row.size() == 1 && row[0].empty();
      if (!all_empty_single) expected.push_back(row);
    }
    EXPECT_EQ(parsed, expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cordial
