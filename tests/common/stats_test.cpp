#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats s;
  for (double v : values) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, StableUnderLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(Quantile, KnownValues) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({5.0}, 0.7), 5.0);
}

TEST(Quantile, UnsortedInputIsSorted) {
  EXPECT_DOUBLE_EQ(Quantile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(Quantile({}, 0.5), ContractViolation);
  EXPECT_THROW(Quantile({1.0}, 1.5), ContractViolation);
  EXPECT_THROW(Quantile({1.0}, -0.1), ContractViolation);
}

TEST(ChiSquare, StatisticHandComputed) {
  // Observed 60/40 vs expected 50/50: (10^2/50)*2 = 4.
  EXPECT_NEAR(ChiSquareStatistic({60.0, 40.0}, {50.0, 50.0}), 4.0, 1e-12);
}

TEST(ChiSquare, ZeroExpectationRequiresZeroObserved) {
  EXPECT_NEAR(ChiSquareStatistic({0.0, 10.0}, {0.0, 10.0}), 0.0, 1e-12);
  EXPECT_THROW(ChiSquareStatistic({1.0, 9.0}, {0.0, 10.0}), ContractViolation);
}

TEST(ChiSquare, SizeMismatchThrows) {
  EXPECT_THROW(ChiSquareStatistic({1.0}, {1.0, 2.0}), ContractViolation);
}

TEST(ChiSquare2x2, HandComputed) {
  // Classic example: [[10, 20], [30, 40]]:
  // n=100, num=10*40-20*30=-200, chi2 = 100*200^2/(30*70*40*60) = 0.7936...
  EXPECT_NEAR(ChiSquare2x2(10, 20, 30, 40), 100.0 * 200.0 * 200.0 /
                                                (30.0 * 70.0 * 40.0 * 60.0),
              1e-12);
}

TEST(ChiSquare2x2, IndependentTableIsZero) {
  // Perfectly proportional rows -> statistic 0.
  EXPECT_NEAR(ChiSquare2x2(10, 20, 30, 60), 0.0, 1e-12);
}

TEST(ChiSquare2x2, DegenerateMarginalsAreZero) {
  EXPECT_EQ(ChiSquare2x2(0, 0, 5, 5), 0.0);
  EXPECT_EQ(ChiSquare2x2(5, 0, 5, 0), 0.0);
  EXPECT_THROW(ChiSquare2x2(0, 0, 0, 0), ContractViolation);
}

TEST(LogGamma, MatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(LogGamma, HalfIntegerIdentity) {
  // Gamma(0.5) = sqrt(pi).
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(3.14159265358979323846), 1e-10);
}

TEST(RegularizedGammaP, BoundaryBehaviour) {
  EXPECT_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 50.0), 1.0, 1e-12);
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(RegularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
}

struct PValueCase {
  double statistic;
  double dof;
  double expected;
};

class ChiSquarePValueTest : public ::testing::TestWithParam<PValueCase> {};

TEST_P(ChiSquarePValueTest, MatchesReferenceTables) {
  const PValueCase c = GetParam();
  EXPECT_NEAR(ChiSquarePValue(c.statistic, c.dof), c.expected, 2e-4);
}

// Reference values from standard chi-square tables.
INSTANTIATE_TEST_SUITE_P(
    Table, ChiSquarePValueTest,
    ::testing::Values(PValueCase{3.841, 1.0, 0.05}, PValueCase{6.635, 1.0, 0.01},
                      PValueCase{5.991, 2.0, 0.05}, PValueCase{0.0, 1.0, 1.0},
                      PValueCase{18.307, 10.0, 0.05},
                      PValueCase{2.706, 1.0, 0.10}));

TEST(ChiSquarePValue, MonotoneDecreasingInStatistic) {
  double prev = 1.0;
  for (double stat = 0.0; stat <= 30.0; stat += 1.5) {
    const double p = ChiSquarePValue(stat, 3.0);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(ChiSquarePValue, RejectsBadInput) {
  EXPECT_THROW(ChiSquarePValue(1.0, 0.0), ContractViolation);
  EXPECT_THROW(ChiSquarePValue(-1.0, 1.0), ContractViolation);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(9.5);   // bin 4
  h.Add(-3.0);  // clamped into bin 0
  h.Add(42.0);  // clamped into bin 4
  h.Add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[4], 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(ChiSquare, PowerDetectsSkewedSample) {
  // A skewed die should produce a large statistic vs a fair expectation.
  Rng rng(31);
  std::vector<double> observed(6, 0.0);
  for (int i = 0; i < 6000; ++i) {
    const std::size_t face = rng.Bernoulli(0.5)
                                 ? 0
                                 : 1 + rng.UniformU64(5);
    observed[face] += 1.0;
  }
  const std::vector<double> expected(6, 1000.0);
  const double stat = ChiSquareStatistic(observed, expected);
  EXPECT_LT(ChiSquarePValue(stat, 5.0), 1e-6);
}

}  // namespace
}  // namespace cordial
