#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace cordial {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(55);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.Next());
  rng.Reseed(55);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng.Next(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(9);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child_a.Next() == child_b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformU64(0), ContractViolation);
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(17);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<double> observed(kBuckets, 0.0);
  for (int i = 0; i < kDraws; ++i) {
    observed[rng.UniformU64(kBuckets)] += 1.0;
  }
  const std::vector<double> expected(kBuckets, kDraws / double(kBuckets));
  const double stat = ChiSquareStatistic(observed, expected);
  // dof = 9; 99.9th percentile ~ 27.9.
  EXPECT_LT(stat, 27.9);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
  EXPECT_EQ(rng.UniformInt(-7, -7), -7);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.UniformInt(2, 1), ContractViolation);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformReal();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRealMeanIsHalf) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.UniformReal());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, BernoulliDegenerateCases) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / double(kDraws), 0.3, 0.01);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MatchesMeanAndVariance) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 11);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) {
    stats.Add(static_cast<double>(rng.Poisson(mean)));
  }
  EXPECT_NEAR(stats.mean(), mean, std::max(0.05, mean * 0.05));
  EXPECT_NEAR(stats.variance(), mean, std::max(0.2, mean * 0.12));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 12.0, 50.0,
                                           120.0));

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(Rng, PoissonRejectsNegativeMean) {
  Rng rng(8);
  EXPECT_THROW(rng.Poisson(-1.0), ContractViolation);
}

class GeometricTest : public ::testing::TestWithParam<double> {};

TEST_P(GeometricTest, MatchesMean) {
  const double p = GetParam();
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) {
    stats.Add(static_cast<double>(rng.Geometric(p)));
  }
  const double expected_mean = (1.0 - p) / p;
  EXPECT_NEAR(stats.mean(), expected_mean, std::max(0.05, expected_mean * 0.06));
}

INSTANTIATE_TEST_SUITE_P(Probs, GeometricTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.9));

TEST(Rng, GeometricCertainSuccessIsZero) {
  Rng rng(20);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(Rng, GeometricRejectsBadP) {
  Rng rng(20);
  EXPECT_THROW(rng.Geometric(0.0), ContractViolation);
  EXPECT_THROW(rng.Geometric(1.5), ContractViolation);
}

TEST(Rng, NormalMoments) {
  Rng rng(21);
  RunningStats stats;
  for (int i = 0; i < 60000; ++i) stats.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(21);
  EXPECT_THROW(rng.Normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, ExponentialMoments) {
  Rng rng(22);
  RunningStats stats;
  for (int i = 0; i < 60000; ++i) stats.Add(rng.Exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.06);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(22);
  EXPECT_THROW(rng.Exponential(0.0), ContractViolation);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(23);
  std::vector<double> draws;
  for (int i = 0; i < 30000; ++i) draws.push_back(rng.LogNormal(3.0, 0.5));
  EXPECT_NEAR(Quantile(draws, 0.5), std::exp(3.0), std::exp(3.0) * 0.03);
}

TEST(Rng, WeightedChoiceFrequencies) {
  Rng rng(24);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.WeightedChoice(weights)];
  }
  EXPECT_NEAR(counts[0] / double(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.3, 0.012);
  EXPECT_NEAR(counts[2] / double(kDraws), 0.6, 0.012);
}

TEST(Rng, WeightedChoiceZeroWeightNeverPicked) {
  Rng rng(25);
  const std::vector<double> weights = {0.0, 1.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.WeightedChoice(weights), 1u);
  }
}

TEST(Rng, WeightedChoiceRejectsDegenerateInput) {
  Rng rng(25);
  EXPECT_THROW(rng.WeightedChoice({}), ContractViolation);
  EXPECT_THROW(rng.WeightedChoice({0.0, 0.0}), ContractViolation);
  EXPECT_THROW(rng.WeightedChoice({-1.0, 2.0}), ContractViolation);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(26);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleHandlesTinyInputs) {
  Rng rng(27);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {7};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(28);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(50, 20);
    ASSERT_EQ(sample.size(), 20u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::size_t v : sample) EXPECT_LT(v, 50u);
  }
}

TEST(Rng, SampleWithoutReplacementEdgeCases) {
  Rng rng(29);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
  const auto all = rng.SampleWithoutReplacement(8, 8);
  std::set<std::size_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), ContractViolation);
}

TEST(Rng, SampleWithoutReplacementIsUnbiased) {
  Rng rng(30);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    for (std::size_t v : rng.SampleWithoutReplacement(10, 3)) {
      ++counts[v];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(c / double(kTrials), 0.3, 0.02);
  }
}

TEST(SplitMix64, IsDeterministicAndMixes) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  std::uint64_t s3 = 42;
  const std::uint64_t a = SplitMix64(s3);
  const std::uint64_t b = SplitMix64(s3);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cordial
