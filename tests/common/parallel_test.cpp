#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cordial {
namespace {

/// Forces a real worker pool for the duration of one test (the container
/// running the suite may report a single hardware thread, which would make
/// every ParallelFor take the serial fallback) and restores auto sizing.
class ForcedThreads {
 public:
  explicit ForcedThreads(std::size_t n) { SetThreadCount(n); }
  ~ForcedThreads() { SetThreadCount(0); }
};

TEST(Parallel, EmptyRangeIsNoOp) {
  const ForcedThreads guard(4);
  bool touched = false;
  ParallelFor(0, 1, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  const ForcedThreads guard(4);
  for (const std::size_t n : {1u, 2u, 7u, 64u, 1000u}) {
    for (const std::size_t chunk : {0u, 1u, 3u, 1024u}) {
      std::vector<std::atomic<int>> hits(n);
      ParallelFor(n, chunk, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " chunk=" << chunk
                                     << " i=" << i;
      }
    }
  }
}

TEST(Parallel, MapPreservesIndexOrder) {
  const ForcedThreads guard(4);
  const std::vector<int> out =
      ParallelMap<int>(257, [](std::size_t i) { return static_cast<int>(i * 3); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * 3));
  }
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  const ForcedThreads guard(4);
  EXPECT_THROW(
      ParallelFor(100, 1,
                  [&](std::size_t i) {
                    if (i == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> sum{0};
  ParallelFor(10, 1, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(Parallel, ExceptionPropagatesOnSerialFallback) {
  const ForcedThreads guard(1);
  EXPECT_THROW(
      ParallelFor(5, 1, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

TEST(Parallel, ExceptionAbortsRemainingChunks) {
  const ForcedThreads guard(4);
  std::atomic<int> executed{0};
  try {
    ParallelFor(100000, 1, [&](std::size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("boom");
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  // First failure marks the job failed; later chunk claims bail out early.
  EXPECT_LT(executed.load(), 100000);
}

TEST(Parallel, NestedParallelForRunsInlineAndCoversAll) {
  const ForcedThreads guard(4);
  EXPECT_FALSE(InParallelRegion());
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 50;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  std::atomic<bool> inner_saw_region{true};
  ParallelFor(kOuter, 1, [&](std::size_t outer) {
    if (!InParallelRegion()) inner_saw_region.store(false);
    ParallelFor(kInner, 1, [&](std::size_t inner) {
      hits[outer * kInner + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_TRUE(inner_saw_region.load());
  EXPECT_FALSE(InParallelRegion());
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, SetThreadCountResizesAndAutoRestores) {
  SetThreadCount(3);
  EXPECT_EQ(ThreadCount(), 3u);
  std::atomic<int> sum{0};
  ParallelFor(100, 1, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
  SetThreadCount(7);
  EXPECT_EQ(ThreadCount(), 7u);
  sum.store(0);
  ParallelFor(100, 1, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
  SetThreadCount(0);
  EXPECT_GE(ThreadCount(), 1u);
}

TEST(Parallel, ParseThreadCountAcceptsPositiveIntegers) {
  std::string error;
  EXPECT_EQ(ParseThreadCount("1", error), 1u);
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(ParseThreadCount("8", error), 8u);
  EXPECT_EQ(ParseThreadCount("512", error), 512u);
}

TEST(Parallel, ParseThreadCountRejectsGarbage) {
  std::string error;
  EXPECT_EQ(ParseThreadCount(nullptr, error), 0u);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(ParseThreadCount("", error), 0u);
  EXPECT_FALSE(error.empty());
  // Trailing garbage must not silently parse as its numeric prefix.
  EXPECT_EQ(ParseThreadCount("8x", error), 0u);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(ParseThreadCount("4 ", error), 0u);
  EXPECT_EQ(ParseThreadCount("2.5", error), 0u);
  EXPECT_EQ(ParseThreadCount("threads", error), 0u);
}

TEST(Parallel, ParseThreadCountRejectsNonPositiveAndOverflow) {
  std::string error;
  EXPECT_EQ(ParseThreadCount("0", error), 0u);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(ParseThreadCount("-4", error), 0u);
  EXPECT_FALSE(error.empty());
  // Beyond long: strtol saturates with ERANGE. Beyond int: also rejected,
  // the pool stores thread counts as int-sized values.
  EXPECT_EQ(ParseThreadCount("99999999999999999999", error), 0u);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(ParseThreadCount("3000000000", error), 0u);
  EXPECT_FALSE(error.empty());
}

TEST(Parallel, ResultIsThreadCountInvariant) {
  // A pure, index-keyed computation must come out identical at any width.
  auto run = [] {
    return ParallelMap<double>(
        500, [](std::size_t i) { return static_cast<double>(i) * 1.5 + 2.0; });
  };
  SetThreadCount(1);
  const std::vector<double> serial = run();
  SetThreadCount(8);
  const std::vector<double> wide = run();
  SetThreadCount(0);
  EXPECT_EQ(serial, wide);
}

}  // namespace
}  // namespace cordial
