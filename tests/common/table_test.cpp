#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace cordial {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Name", "Value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, TitleAppearsFirst) {
  TextTable t({"A"});
  t.AddRow({"x"});
  const std::string out = t.Render("My Title");
  EXPECT_EQ(out.rfind("My Title", 0), 0u);
}

TEST(TextTable, AllLinesSameWidth) {
  TextTable t({"Col", "Another Column"});
  t.AddRow({"a-very-long-cell-value", "1"});
  t.AddRow({"b", "123456"});
  t.AddSeparator();
  t.AddRow({"c", "2"});
  std::istringstream in(t.Render("T"));
  std::string line;
  std::getline(in, line);  // title
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.AddRow({"only-one"}), ContractViolation);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), ContractViolation);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable t({"Name", "Count"});
  t.AddRow({"x", "7"});
  const std::string out = t.Render();
  // The numeric cell is padded on the left: "|     7 |" style.
  EXPECT_NE(out.find(" 7 |"), std::string::npos);
}

TEST(TextTable, FormatDouble) {
  EXPECT_EQ(TextTable::FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(TextTable::FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(TextTable::FormatDouble(-0.5, 2), "-0.50");
}

TEST(TextTable, FormatPercent) {
  EXPECT_EQ(TextTable::FormatPercent(0.1958), "19.58%");
  EXPECT_EQ(TextTable::FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(TextTable::FormatPercent(0.04386, 2), "4.39%");
}

}  // namespace
}  // namespace cordial
