#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/booster.hpp"
#include "ml/forest.hpp"
#include "ml/metrics.hpp"

namespace cordial::ml {
namespace {

// --------------------------------------------------------------- Brier

TEST(BrierScore, PerfectAndWorstCases) {
  EXPECT_DOUBLE_EQ(BrierScore({1.0, 0.0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(BrierScore({0.0, 1.0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(BrierScore({0.5, 0.5}, {1, 0}), 0.25);
}

TEST(BrierScore, HandComputed) {
  // (0.8-1)^2 + (0.3-0)^2 + (0.6-1)^2 = 0.04 + 0.09 + 0.16 = 0.29 / 3.
  EXPECT_NEAR(BrierScore({0.8, 0.3, 0.6}, {1, 0, 1}), 0.29 / 3.0, 1e-12);
}

TEST(BrierScore, RejectsBadInput) {
  EXPECT_THROW(BrierScore({0.5}, {1, 0}), ContractViolation);
  EXPECT_THROW(BrierScore({}, {}), ContractViolation);
  EXPECT_THROW(BrierScore({1.5}, {1}), ContractViolation);
  EXPECT_THROW(BrierScore({0.5}, {2}), ContractViolation);
}

// --------------------------------------------------------- calibration

TEST(CalibrationCurve, BinsPopulateCorrectly) {
  const std::vector<double> proba = {0.05, 0.15, 0.15, 0.95, 1.0};
  const std::vector<int> truth = {0, 0, 1, 1, 1};
  const auto bins = CalibrationCurve(proba, truth, 10);
  ASSERT_EQ(bins.size(), 10u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 2u);
  EXPECT_NEAR(bins[1].mean_predicted, 0.15, 1e-12);
  EXPECT_NEAR(bins[1].fraction_positive, 0.5, 1e-12);
  // p == 1.0 clamps into the last bin.
  EXPECT_EQ(bins[9].count, 2u);
  EXPECT_EQ(bins[5].count, 0u);
}

TEST(CalibrationCurve, RejectsBadInput) {
  EXPECT_THROW(CalibrationCurve({0.5}, {1}, 1), ContractViolation);
  EXPECT_THROW(CalibrationCurve({0.5, 0.5}, {1}, 10), ContractViolation);
}

TEST(ExpectedCalibrationError, ZeroForPerfectCalibration) {
  // Bin at 0.25 with 25% positives, bin at 0.75 with 75% positives.
  std::vector<double> proba;
  std::vector<int> truth;
  for (int i = 0; i < 100; ++i) {
    proba.push_back(0.25);
    truth.push_back(i % 4 == 0 ? 1 : 0);
    proba.push_back(0.75);
    truth.push_back(i % 4 != 0 ? 1 : 0);
  }
  EXPECT_NEAR(ExpectedCalibrationError(proba, truth, 10), 0.0, 1e-12);
}

TEST(ExpectedCalibrationError, DetectsOverconfidence) {
  // Claims 0.95 but only half are positive.
  std::vector<double> proba(100, 0.95);
  std::vector<int> truth;
  for (int i = 0; i < 100; ++i) truth.push_back(i % 2);
  EXPECT_NEAR(ExpectedCalibrationError(proba, truth, 10), 0.45, 1e-12);
}

// ----------------------------------- learned probabilities are useful

TEST(ProbabilityQuality, ForestProbabilitiesBeatCoinOnBlobs) {
  Rng rng(1);
  Dataset train(2, 2), test(2, 2);
  for (int i = 0; i < 400; ++i) {
    const double a[] = {rng.Normal(-1, 1.2), rng.Normal(0, 1)};
    (i < 300 ? train : test).AddRow(std::span<const double>(a, 2), 0);
    const double b[] = {rng.Normal(1, 1.2), rng.Normal(0, 1)};
    (i < 300 ? train : test).AddRow(std::span<const double>(b, 2), 1);
  }
  auto forest = MakeRandomForest();
  Rng fit_rng(2);
  forest->Fit(train, fit_rng);
  std::vector<double> proba;
  std::vector<int> truth;
  for (std::size_t i = 0; i < test.size(); ++i) {
    proba.push_back(forest->PredictProba(test.row(i))[1]);
    truth.push_back(test.label(i));
  }
  EXPECT_LT(BrierScore(proba, truth), 0.20);       // informative
  EXPECT_LT(ExpectedCalibrationError(proba, truth), 0.15);  // honest
}

// ----------------------------------------------------------- importance

TEST(FeatureImportance, ForestFindsTheInformativeFeature) {
  Rng rng(3);
  Dataset data(4, 2);
  for (int i = 0; i < 400; ++i) {
    const int label = i % 2;
    const double row[] = {rng.Normal(0, 1), rng.Normal(0, 1),
                          label == 0 ? rng.Normal(-2, 0.5)
                                     : rng.Normal(2, 0.5),
                          rng.Normal(0, 1)};
    data.AddRow(std::span<const double>(row, 4), label);
  }
  auto forest = MakeRandomForest();
  Rng fit_rng(4);
  forest->Fit(data, fit_rng);
  const auto importance = forest->FeatureImportance();
  ASSERT_EQ(importance.size(), 4u);
  double total = 0.0;
  for (double v : importance) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(importance[2], 0.6);
  EXPECT_GT(importance[2], importance[0] + importance[1] + importance[3]);
}

TEST(FeatureImportance, BoosterFindsTheInformativeFeature) {
  Rng rng(5);
  Dataset data(3, 2);
  for (int i = 0; i < 300; ++i) {
    const int label = i % 2;
    const double row[] = {rng.Normal(0, 1),
                          label == 0 ? rng.Normal(-2, 0.5)
                                     : rng.Normal(2, 0.5),
                          rng.Normal(0, 1)};
    data.AddRow(std::span<const double>(row, 3), label);
  }
  for (auto kind : {LearnerKind::kXgbStyle, LearnerKind::kLgbmStyle}) {
    auto model = MakeClassifier(kind);
    Rng fit_rng(6);
    model->Fit(data, fit_rng);
    const auto importance = model->FeatureImportance();
    ASSERT_EQ(importance.size(), 3u);
    EXPECT_GT(importance[1], 0.5) << LearnerKindName(kind);
  }
}

TEST(FeatureImportance, EmptyBeforeFitting) {
  EXPECT_TRUE(MakeRandomForest()->FeatureImportance().empty());
  EXPECT_TRUE(MakeXgbStyleBooster()->FeatureImportance().empty());
}

// ----------------------------------------------------------------- GOSS

TEST(Goss, StillLearnsTheProblem) {
  Rng rng(7);
  Dataset train(2, 2), test(2, 2);
  for (int i = 0; i < 500; ++i) {
    const double a[] = {rng.Normal(-2, 0.6), rng.Normal(0, 1)};
    (i < 350 ? train : test).AddRow(std::span<const double>(a, 2), 0);
    const double b[] = {rng.Normal(2, 0.6), rng.Normal(0, 1)};
    (i < 350 ? train : test).AddRow(std::span<const double>(b, 2), 1);
  }
  BoosterOptions options;
  options.n_rounds = 40;
  options.goss = true;
  auto model = MakeLgbmStyleBooster(options);
  Rng fit_rng(8);
  model->Fit(train, fit_rng);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += model->Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()),
            0.95);
}

TEST(Goss, DeterministicGivenSeed) {
  Rng rng(9);
  Dataset data(2, 2);
  for (int i = 0; i < 200; ++i) {
    const double row[] = {rng.Normal(i % 2 ? 2 : -2, 1.0), rng.Normal(0, 1)};
    data.AddRow(std::span<const double>(row, 2), i % 2);
  }
  BoosterOptions options;
  options.n_rounds = 10;
  options.goss = true;
  auto a = MakeLgbmStyleBooster(options);
  auto b = MakeLgbmStyleBooster(options);
  Rng ra(10), rb(10);
  a->Fit(data, ra);
  b->Fit(data, rb);
  for (std::size_t i = 0; i < data.size(); i += 11) {
    EXPECT_EQ(a->PredictProba(data.row(i)), b->PredictProba(data.row(i)));
  }
}

}  // namespace
}  // namespace cordial::ml
