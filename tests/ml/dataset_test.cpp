#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace cordial::ml {
namespace {

Dataset TinyDataset() {
  Dataset data(2, 3, {"x", "y"});
  const double rows[][2] = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  const int labels[] = {0, 1, 2, 1};
  for (int i = 0; i < 4; ++i) {
    data.AddRow(std::span<const double>(rows[i], 2), labels[i]);
  }
  return data;
}

TEST(Dataset, StoresRowsAndLabels) {
  const Dataset data = TinyDataset();
  EXPECT_EQ(data.size(), 4u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_EQ(data.num_classes(), 3);
  EXPECT_DOUBLE_EQ(data.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(data.at(2, 1), 6.0);
  EXPECT_EQ(data.label(3), 1);
  EXPECT_EQ(data.row(0).size(), 2u);
  EXPECT_DOUBLE_EQ(data.row(0)[1], 2.0);
}

TEST(Dataset, FeatureNamesDefaultAndCustom) {
  const Dataset named = TinyDataset();
  EXPECT_EQ(named.feature_names()[0], "x");
  Dataset anonymous(3, 2);
  EXPECT_EQ(anonymous.feature_names()[2], "f2");
}

TEST(Dataset, ClassCounts) {
  const auto counts = TinyDataset().ClassCounts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 2, 1}));
}

TEST(Dataset, SubsetAllowsDuplicates) {
  const Dataset data = TinyDataset();
  const Dataset sub = data.Subset({1, 1, 3});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 0), 3.0);
  EXPECT_EQ(sub.label(2), 1);
}

TEST(Dataset, RejectsBadInput) {
  Dataset data(2, 2);
  const double row[] = {1.0};
  EXPECT_THROW(data.AddRow(std::span<const double>(row, 1), 0),
               ContractViolation);
  const double ok[] = {1.0, 2.0};
  EXPECT_THROW(data.AddRow(std::span<const double>(ok, 2), 2),
               ContractViolation);
  EXPECT_THROW(data.AddRow(std::span<const double>(ok, 2), -1),
               ContractViolation);
  EXPECT_THROW(Dataset(0, 2), ContractViolation);
  EXPECT_THROW(Dataset(2, 1), ContractViolation);
  EXPECT_THROW(data.at(0, 0), ContractViolation);  // empty dataset
}

TEST(StratifiedSplit, PartitionsWithoutOverlap) {
  Dataset data(1, 2);
  for (int i = 0; i < 100; ++i) {
    const double x = i;
    data.AddRow(std::span<const double>(&x, 1), i < 70 ? 0 : 1);
  }
  Rng rng(1);
  const TrainTestSplit split = StratifiedSplit(data, 0.3, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), 100u);
  std::set<std::size_t> seen(split.train.begin(), split.train.end());
  seen.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(StratifiedSplit, PreservesClassProportions) {
  Dataset data(1, 3);
  for (int i = 0; i < 300; ++i) {
    const double x = i;
    data.AddRow(std::span<const double>(&x, 1), i % 3);
  }
  Rng rng(2);
  const TrainTestSplit split = StratifiedSplit(data, 0.3, rng);
  std::vector<int> test_counts(3, 0);
  for (std::size_t i : split.test) ++test_counts[data.label(i) % 3];
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(test_counts[static_cast<std::size_t>(c)], 30);
  }
}

TEST(StratifiedSplit, TinyClassStillRepresentedInTest) {
  Dataset data(1, 2);
  for (int i = 0; i < 50; ++i) {
    const double x = i;
    data.AddRow(std::span<const double>(&x, 1), i < 48 ? 0 : 1);
  }
  Rng rng(3);
  const TrainTestSplit split = StratifiedSplit(data, 0.1, rng);
  int tiny_in_test = 0;
  for (std::size_t i : split.test) tiny_in_test += data.label(i) == 1;
  EXPECT_EQ(tiny_in_test, 1);
}

TEST(StratifiedSplit, DeterministicGivenSeed) {
  Dataset data(1, 2);
  for (int i = 0; i < 40; ++i) {
    const double x = i;
    data.AddRow(std::span<const double>(&x, 1), i % 2);
  }
  Rng a(9), b(9);
  EXPECT_EQ(StratifiedSplit(data, 0.25, a).test,
            StratifiedSplit(data, 0.25, b).test);
}

TEST(StratifiedSplit, RejectsBadFraction) {
  Dataset data = TinyDataset();
  Rng rng(4);
  EXPECT_THROW(StratifiedSplit(data, 0.0, rng), ContractViolation);
  EXPECT_THROW(StratifiedSplit(data, 1.0, rng), ContractViolation);
}

TEST(RandomSplit, SizesAndDisjointness) {
  Rng rng(5);
  const TrainTestSplit split = RandomSplit(100, 0.3, rng);
  EXPECT_EQ(split.test.size(), 30u);
  EXPECT_EQ(split.train.size(), 70u);
  std::set<std::size_t> seen(split.train.begin(), split.train.end());
  seen.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(seen.size(), 100u);
}

}  // namespace
}  // namespace cordial::ml
