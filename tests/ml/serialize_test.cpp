#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/booster.hpp"
#include "ml/forest.hpp"
#include "ml/tree.hpp"

namespace cordial::ml {
namespace {

Dataset Blobs(std::size_t n_per_class, int classes, Rng& rng) {
  Dataset data(3, classes);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < classes; ++cls) {
      const double row[] = {static_cast<double>(cls) * 3.0 + rng.Normal(0, 0.7),
                            rng.Normal(0, 1.0), rng.Normal(0, 1.0)};
      data.AddRow(std::span<const double>(row, 3), cls);
    }
  }
  return data;
}

template <typename Model>
void ExpectIdenticalProba(const Model& a, const Classifier& b,
                          const Dataset& data) {
  for (std::size_t i = 0; i < data.size(); i += 3) {
    EXPECT_EQ(a.PredictProba(data.row(i)), b.PredictProba(data.row(i)))
        << "row " << i;
  }
}

TEST(Serialize, ClassificationTreeRoundTrip) {
  Rng rng(1);
  const Dataset data = Blobs(60, 3, rng);
  ClassificationTree tree;
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  tree.Fit(data, all, rng);

  std::stringstream buffer;
  tree.Serialize(buffer);
  const ClassificationTree restored = ClassificationTree::Deserialize(buffer);
  EXPECT_EQ(restored.node_count(), tree.node_count());
  for (std::size_t i = 0; i < data.size(); i += 5) {
    EXPECT_EQ(restored.PredictProba(data.row(i)), tree.PredictProba(data.row(i)));
  }
  EXPECT_EQ(restored.feature_importance(), tree.feature_importance());
}

TEST(Serialize, RegressionTreeRoundTrip) {
  Rng rng(2);
  Dataset data(2, 2);
  std::vector<double> grad, hess;
  for (int i = 0; i < 100; ++i) {
    const double row[] = {static_cast<double>(i), rng.Normal(0, 1)};
    data.AddRow(std::span<const double>(row, 2), 0);
    grad.push_back(i < 50 ? 1.0 : -1.0);
    hess.push_back(1.0);
  }
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  RegressionTree tree;
  tree.Fit(data, all, grad, hess, rng, nullptr);

  std::stringstream buffer;
  tree.Serialize(buffer);
  const RegressionTree restored = RegressionTree::Deserialize(buffer);
  EXPECT_EQ(restored.node_count(), tree.node_count());
  for (std::size_t i = 0; i < data.size(); i += 7) {
    EXPECT_EQ(restored.Predict(data.row(i)), tree.Predict(data.row(i)));
  }
}

TEST(Serialize, RandomForestRoundTrip) {
  Rng rng(3);
  const Dataset data = Blobs(50, 3, rng);
  RandomForestOptions options;
  options.n_trees = 15;
  RandomForestClassifier forest(options);
  Rng fit_rng(4);
  forest.Fit(data, fit_rng);

  std::stringstream buffer;
  SaveClassifier(forest, buffer);
  const auto restored = LoadClassifier(buffer);
  ExpectIdenticalProba(forest, *restored, data);
}

TEST(Serialize, XgbStyleBoosterRoundTrip) {
  Rng rng(5);
  const Dataset data = Blobs(60, 2, rng);
  BoosterOptions options;
  options.n_rounds = 12;
  auto booster = MakeXgbStyleBooster(options);
  Rng fit_rng(6);
  booster->Fit(data, fit_rng);

  std::stringstream buffer;
  SaveClassifier(*booster, buffer);
  const auto restored = LoadClassifier(buffer);
  ExpectIdenticalProba(*booster, *restored, data);
}

TEST(Serialize, LgbmStyleBoosterRoundTrip) {
  Rng rng(7);
  const Dataset data = Blobs(60, 3, rng);
  auto booster = MakeClassifier(LearnerKind::kLgbmStyle);
  Rng fit_rng(8);
  booster->Fit(data, fit_rng);

  std::stringstream buffer;
  SaveClassifier(*booster, buffer);
  const auto restored = LoadClassifier(buffer);
  ExpectIdenticalProba(*booster, *restored, data);
}

TEST(Serialize, RoundTripSurvivesDoubleSerialization) {
  Rng rng(9);
  const Dataset data = Blobs(40, 2, rng);
  auto model = MakeRandomForest(RandomForestOptions{.n_trees = 5});
  Rng fit_rng(10);
  model->Fit(data, fit_rng);
  std::stringstream first, second;
  SaveClassifier(*model, first);
  const auto once = LoadClassifier(first);
  SaveClassifier(*once, second);
  EXPECT_NO_THROW(LoadClassifier(second));
}

TEST(Serialize, UnfittedModelsRefuseToSerialize) {
  std::stringstream buffer;
  RandomForestClassifier forest;
  EXPECT_THROW(forest.Serialize(buffer), ContractViolation);
  auto booster = MakeXgbStyleBooster();
  EXPECT_THROW(booster->Serialize(buffer), ContractViolation);
}

TEST(Serialize, LoadRejectsGarbage) {
  std::istringstream empty("");
  EXPECT_THROW(LoadClassifier(empty), ParseError);
  std::istringstream junk("not_a_model v1");
  EXPECT_THROW(LoadClassifier(junk), ParseError);
  std::istringstream truncated("random_forest v1\nclasses 3 trees 5\n");
  EXPECT_THROW(LoadClassifier(truncated), ParseError);
  std::istringstream bad_header("random_forest v2\n");
  EXPECT_THROW(LoadClassifier(bad_header), ParseError);
}

TEST(Serialize, TreeDeserializeValidatesChildren) {
  // A decision node whose child index points past the node table.
  std::istringstream evil(
      "classification_tree v1\nclasses 2 nodes 1 importance 0\n"
      "0 0.5 5 6\n");
  EXPECT_THROW(ClassificationTree::Deserialize(evil), ContractViolation);
}

}  // namespace
}  // namespace cordial::ml
