#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace cordial::ml {
namespace {

ConfusionMatrix HandMatrix() {
  // truth\pred   0   1   2
  //   0          5   2   1      (support 8)
  //   1          1   6   1      (support 8)
  //   2          0   2   2      (support 4)
  ConfusionMatrix cm(3);
  auto add = [&](int t, int p, int n) {
    for (int i = 0; i < n; ++i) cm.Add(t, p);
  };
  add(0, 0, 5);
  add(0, 1, 2);
  add(0, 2, 1);
  add(1, 0, 1);
  add(1, 1, 6);
  add(1, 2, 1);
  add(2, 1, 2);
  add(2, 2, 2);
  return cm;
}

TEST(ConfusionMatrix, CellsAndTotal) {
  const ConfusionMatrix cm = HandMatrix();
  EXPECT_EQ(cm.total(), 20u);
  EXPECT_EQ(cm.at(0, 0), 5u);
  EXPECT_EQ(cm.at(2, 1), 2u);
  EXPECT_EQ(cm.at(2, 0), 0u);
}

TEST(ConfusionMatrix, PerClassMetricsHandComputed) {
  const ConfusionMatrix cm = HandMatrix();
  const ClassMetrics c0 = cm.Metrics(0);
  EXPECT_NEAR(c0.precision, 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(c0.recall, 5.0 / 8.0, 1e-12);
  EXPECT_NEAR(c0.f1, 2 * (5.0 / 6.0) * (5.0 / 8.0) / (5.0 / 6.0 + 5.0 / 8.0),
              1e-12);
  EXPECT_EQ(c0.support, 8u);

  const ClassMetrics c2 = cm.Metrics(2);
  EXPECT_NEAR(c2.precision, 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(c2.recall, 2.0 / 4.0, 1e-12);
  EXPECT_EQ(c2.support, 4u);
}

TEST(ConfusionMatrix, WeightedAverageUsesSupports) {
  const ConfusionMatrix cm = HandMatrix();
  const ClassMetrics w = cm.WeightedAverage();
  const ClassMetrics c0 = cm.Metrics(0);
  const ClassMetrics c1 = cm.Metrics(1);
  const ClassMetrics c2 = cm.Metrics(2);
  EXPECT_NEAR(w.f1, (8 * c0.f1 + 8 * c1.f1 + 4 * c2.f1) / 20.0, 1e-12);
  EXPECT_EQ(w.support, 20u);
}

TEST(ConfusionMatrix, MacroAverageIsUnweighted) {
  const ConfusionMatrix cm = HandMatrix();
  const ClassMetrics m = cm.MacroAverage();
  const double expected =
      (cm.Metrics(0).f1 + cm.Metrics(1).f1 + cm.Metrics(2).f1) / 3.0;
  EXPECT_NEAR(m.f1, expected, 1e-12);
}

TEST(ConfusionMatrix, Accuracy) {
  const ConfusionMatrix cm = HandMatrix();
  EXPECT_NEAR(cm.Accuracy(), 13.0 / 20.0, 1e-12);
  EXPECT_EQ(ConfusionMatrix(2).Accuracy(), 0.0);
}

TEST(ConfusionMatrix, ZeroDivisionYieldsZeroMetrics) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  // Class 1 never appears: zero support, zero predictions.
  const ClassMetrics c1 = cm.Metrics(1);
  EXPECT_EQ(c1.precision, 0.0);
  EXPECT_EQ(c1.recall, 0.0);
  EXPECT_EQ(c1.f1, 0.0);
  EXPECT_EQ(c1.support, 0u);
}

TEST(ConfusionMatrix, PerfectClassifier) {
  ConfusionMatrix cm(2);
  for (int i = 0; i < 10; ++i) cm.Add(i % 2, i % 2);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.WeightedAverage().f1, 1.0);
}

TEST(ConfusionMatrix, RejectsOutOfRange) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.Add(2, 0), ContractViolation);
  EXPECT_THROW(cm.Add(0, -1), ContractViolation);
  EXPECT_THROW(cm.at(0, 5), ContractViolation);
  EXPECT_THROW(ConfusionMatrix(1), ContractViolation);
}

TEST(ConfusionMatrix, ToStringListsCells) {
  const ConfusionMatrix cm = HandMatrix();
  const std::string s = cm.ToString({"a", "b", "c"});
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("5"), std::string::npos);
}

TEST(BinaryMetrics, MatchesConfusionMatrix) {
  const std::vector<int> truth = {1, 0, 1, 1, 0, 0, 1};
  const std::vector<int> pred = {1, 0, 0, 1, 1, 0, 1};
  const ClassMetrics m = BinaryMetrics(truth, pred);
  // tp=3, fp=1, fn=1.
  EXPECT_NEAR(m.precision, 0.75, 1e-12);
  EXPECT_NEAR(m.recall, 0.75, 1e-12);
  EXPECT_EQ(m.support, 4u);
}

TEST(BinaryMetrics, RejectsSizeMismatch) {
  EXPECT_THROW(BinaryMetrics({1, 0}, {1}), ContractViolation);
}

}  // namespace
}  // namespace cordial::ml
