#include "ml/validation.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/booster.hpp"
#include "ml/forest.hpp"

namespace cordial::ml {
namespace {

Dataset SeparableBlobs(std::size_t n_per_class, Rng& rng) {
  Dataset data(3, 2);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    const double a[] = {rng.Normal(-2, 0.6), rng.Normal(0, 1), rng.Normal(0, 1)};
    data.AddRow(std::span<const double>(a, 3), 0);
    const double b[] = {rng.Normal(2, 0.6), rng.Normal(0, 1), rng.Normal(0, 1)};
    data.AddRow(std::span<const double>(b, 3), 1);
  }
  return data;
}

TEST(CrossValidate, HighAccuracyOnSeparableData) {
  Rng rng(1);
  const Dataset data = SeparableBlobs(120, rng);
  Rng cv_rng(2);
  const CrossValidationResult result = CrossValidate(
      data,
      [] {
        return MakeRandomForest(RandomForestOptions{.n_trees = 30});
      },
      5, cv_rng);
  ASSERT_EQ(result.fold_accuracy.size(), 5u);
  EXPECT_GT(result.mean_accuracy, 0.95);
  EXPECT_GT(result.mean_weighted_f1, 0.95);
  EXPECT_LT(result.stddev_accuracy, 0.05);
}

TEST(CrossValidate, NearChanceOnNoise) {
  Rng rng(3);
  Dataset data(2, 2);
  for (int i = 0; i < 300; ++i) {
    const double row[] = {rng.Normal(0, 1), rng.Normal(0, 1)};
    data.AddRow(std::span<const double>(row, 2), i % 2);
  }
  Rng cv_rng(4);
  const CrossValidationResult result = CrossValidate(
      data,
      [] {
        return MakeRandomForest(RandomForestOptions{.n_trees = 20});
      },
      4, cv_rng);
  EXPECT_LT(result.mean_accuracy, 0.62);
  EXPECT_GT(result.mean_accuracy, 0.38);
}

TEST(CrossValidate, FoldsPartitionTheData) {
  // With k folds, fold accuracies exist for every fold even with a skewed
  // class (stratification keeps both classes in every fold).
  Rng rng(5);
  Dataset data(1, 2);
  for (int i = 0; i < 100; ++i) {
    const double x = i < 80 ? rng.Normal(-1, 1) : rng.Normal(1, 1);
    data.AddRow(std::span<const double>(&x, 1), i < 80 ? 0 : 1);
  }
  Rng cv_rng(6);
  const auto result = CrossValidate(
      data, [] { return MakeRandomForest(RandomForestOptions{.n_trees = 5}); },
      5, cv_rng);
  for (double accuracy : result.fold_accuracy) {
    EXPECT_GT(accuracy, 0.3);  // a fold without both classes would be weird
  }
}

TEST(CrossValidate, RejectsBadConfig) {
  Rng rng(7);
  const Dataset data = SeparableBlobs(10, rng);
  auto factory = [] { return MakeRandomForest(); };
  EXPECT_THROW(CrossValidate(data, factory, 1, rng), ContractViolation);
  Dataset tiny(1, 2);
  const double x = 0.0;
  tiny.AddRow(std::span<const double>(&x, 1), 0);
  EXPECT_THROW(CrossValidate(tiny, factory, 2, rng), ContractViolation);
}

TEST(PermutationImportance, InformativeFeatureDominates) {
  Rng rng(8);
  const Dataset data = SeparableBlobs(150, rng);  // feature 0 informative
  auto model = MakeRandomForest();
  Rng fit_rng(9);
  model->Fit(data, fit_rng);
  Rng perm_rng(10);
  const auto importance = PermutationImportance(*model, data, 3, perm_rng);
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[0], 0.25);        // shuffling it destroys accuracy
  EXPECT_LT(std::abs(importance[1]), 0.05);  // noise features barely matter
  EXPECT_LT(std::abs(importance[2]), 0.05);
}

TEST(PermutationImportance, AgreesWithGainImportanceOnRanking) {
  Rng rng(11);
  const Dataset data = SeparableBlobs(150, rng);
  auto model = MakeXgbStyleBooster(BoosterOptions{.n_rounds = 30});
  Rng fit_rng(12);
  model->Fit(data, fit_rng);
  Rng perm_rng(13);
  const auto permutation = PermutationImportance(*model, data, 2, perm_rng);
  const auto gain = model->FeatureImportance();
  // Both rank feature 0 first.
  EXPECT_EQ(std::max_element(permutation.begin(), permutation.end()) -
                permutation.begin(),
            0);
  EXPECT_EQ(std::max_element(gain.begin(), gain.end()) - gain.begin(), 0);
}

TEST(PermutationImportance, RejectsBadInput) {
  Rng rng(14);
  const Dataset data = SeparableBlobs(10, rng);
  auto model = MakeRandomForest();
  Rng fit_rng(15);
  model->Fit(data, fit_rng);
  EXPECT_THROW(PermutationImportance(*model, data, 0, rng),
               ContractViolation);
}

}  // namespace
}  // namespace cordial::ml
