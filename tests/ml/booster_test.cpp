#include "ml/booster.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::ml {
namespace {

Dataset Blobs2(std::size_t n_per_class, double noise, Rng& rng) {
  Dataset data(3, 2);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    const double a[] = {rng.Normal(-2, noise), rng.Normal(0, 1), rng.Normal(0, 1)};
    data.AddRow(std::span<const double>(a, 3), 0);
    const double b[] = {rng.Normal(2, noise), rng.Normal(0, 1), rng.Normal(0, 1)};
    data.AddRow(std::span<const double>(b, 3), 1);
  }
  return data;
}

Dataset Blobs3(std::size_t n_per_class, double noise, Rng& rng) {
  Dataset data(2, 3);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 3; ++cls) {
      const double angle = cls * 2.094;
      const double row[] = {2.5 * std::cos(angle) + rng.Normal(0, noise),
                            2.5 * std::sin(angle) + rng.Normal(0, noise)};
      data.AddRow(std::span<const double>(row, 2), cls);
    }
  }
  return data;
}

double Accuracy(const Classifier& model, const Dataset& data) {
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += model.Predict(data.row(i)) == data.label(i);
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(Softmax, BasicProperties) {
  const std::vector<double> scores = {1.0, 2.0, 3.0};
  const auto p = Softmax(scores);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, StableUnderLargeScores) {
  const std::vector<double> scores = {1000.0, 1001.0};
  const auto p = Softmax(scores);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_NEAR(p[1] / p[0], std::exp(1.0), 1e-6);
}

TEST(Softmax, RejectsEmpty) {
  EXPECT_THROW(Softmax(std::vector<double>{}), ContractViolation);
}

class BoosterKindTest
    : public ::testing::TestWithParam<bool> {};  // histogram_leafwise?

TEST_P(BoosterKindTest, LearnsBinaryBlobs) {
  Rng rng(1);
  const Dataset train = Blobs2(200, 0.6, rng);
  const Dataset test = Blobs2(100, 0.6, rng);
  BoosterOptions options;
  options.n_rounds = 40;
  auto model = GetParam() ? MakeLgbmStyleBooster(options)
                          : MakeXgbStyleBooster(options);
  Rng fit_rng(2);
  model->Fit(train, fit_rng);
  EXPECT_GT(Accuracy(*model, test), 0.95);
}

TEST_P(BoosterKindTest, LearnsThreeClassBlobs) {
  Rng rng(3);
  const Dataset train = Blobs3(150, 0.6, rng);
  const Dataset test = Blobs3(80, 0.6, rng);
  BoosterOptions options;
  options.n_rounds = 40;
  auto model = GetParam() ? MakeLgbmStyleBooster(options)
                          : MakeXgbStyleBooster(options);
  Rng fit_rng(4);
  model->Fit(train, fit_rng);
  EXPECT_GT(Accuracy(*model, test), 0.9);
}

TEST_P(BoosterKindTest, ProbabilitiesAreValid) {
  Rng rng(5);
  const Dataset train = Blobs3(50, 0.8, rng);
  BoosterOptions options;
  options.n_rounds = 15;
  auto model = GetParam() ? MakeLgbmStyleBooster(options)
                          : MakeXgbStyleBooster(options);
  Rng fit_rng(6);
  model->Fit(train, fit_rng);
  for (std::size_t i = 0; i < train.size(); i += 13) {
    const auto proba = model->PredictProba(train.row(i));
    ASSERT_EQ(proba.size(), 3u);
    double total = 0.0;
    for (double p : proba) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(BoosterKindTest, DeterministicGivenSeed) {
  Rng rng(7);
  const Dataset train = Blobs2(60, 1.0, rng);
  BoosterOptions options;
  options.n_rounds = 10;
  auto a = GetParam() ? MakeLgbmStyleBooster(options)
                      : MakeXgbStyleBooster(options);
  auto b = GetParam() ? MakeLgbmStyleBooster(options)
                      : MakeXgbStyleBooster(options);
  Rng ra(8), rb(8);
  a->Fit(train, ra);
  b->Fit(train, rb);
  for (std::size_t i = 0; i < train.size(); i += 9) {
    EXPECT_EQ(a->PredictProba(train.row(i)), b->PredictProba(train.row(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Styles, BoosterKindTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "LgbmStyle" : "XgbStyle";
                         });

TEST(Booster, MoreRoundsImproveTrainingFit) {
  Rng rng(9);
  const Dataset train = Blobs2(150, 2.5, rng);  // heavily overlapping
  BoosterOptions few;
  few.n_rounds = 2;
  few.learning_rate = 0.05;
  BoosterOptions many = few;
  many.n_rounds = 80;
  auto weak = MakeXgbStyleBooster(few);
  auto strong = MakeXgbStyleBooster(many);
  Rng r1(10), r2(10);
  weak->Fit(train, r1);
  strong->Fit(train, r2);
  EXPECT_GT(Accuracy(*strong, train), Accuracy(*weak, train));
}

TEST(Booster, BaseScoreReflectsClassPrior) {
  // A booster fitted on a skewed dataset with no usable features must
  // predict the majority class.
  Dataset data(1, 2);
  Rng noise(11);
  for (int i = 0; i < 100; ++i) {
    const double x = 1.0;  // constant feature
    data.AddRow(std::span<const double>(&x, 1), i < 90 ? 0 : 1);
  }
  BoosterOptions options;
  options.n_rounds = 5;
  auto model = MakeXgbStyleBooster(options);
  Rng rng(12);
  model->Fit(data, rng);
  const double x = 1.0;
  EXPECT_EQ(model->Predict(std::span<const double>(&x, 1)), 0);
  const auto proba = model->PredictProba(std::span<const double>(&x, 1));
  EXPECT_GT(proba[0], 0.75);
}

TEST(Booster, NamesDistinguishStyles) {
  EXPECT_EQ(MakeXgbStyleBooster()->name(), "XGBoost-style");
  EXPECT_EQ(MakeLgbmStyleBooster()->name(), "LightGBM-style");
}

TEST(Booster, FactoryCoversAllKinds) {
  EXPECT_NE(MakeClassifier(LearnerKind::kRandomForest), nullptr);
  EXPECT_NE(MakeClassifier(LearnerKind::kXgbStyle), nullptr);
  EXPECT_NE(MakeClassifier(LearnerKind::kLgbmStyle), nullptr);
  EXPECT_STREQ(LearnerKindName(LearnerKind::kRandomForest), "Random Forest");
  EXPECT_STREQ(LearnerKindName(LearnerKind::kXgbStyle), "XGBoost");
  EXPECT_STREQ(LearnerKindName(LearnerKind::kLgbmStyle), "LightGBM");
}

TEST(Booster, RejectsBadOptions) {
  BoosterOptions bad;
  bad.n_rounds = 0;
  EXPECT_THROW(GradientBoostedClassifier("x", bad, false), ContractViolation);
  BoosterOptions bad_lr;
  bad_lr.learning_rate = 0.0;
  EXPECT_THROW(GradientBoostedClassifier("x", bad_lr, false),
               ContractViolation);
  BoosterOptions bad_sub;
  bad_sub.subsample = 0.0;
  EXPECT_THROW(GradientBoostedClassifier("x", bad_sub, false),
               ContractViolation);
}

TEST(Booster, UnfittedPredictThrows) {
  auto model = MakeXgbStyleBooster();
  const double x[] = {0.0};
  EXPECT_THROW(model->PredictProba(std::span<const double>(x, 1)),
               ContractViolation);
}

}  // namespace
}  // namespace cordial::ml
