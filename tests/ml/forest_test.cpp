#include "ml/forest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::ml {
namespace {

Dataset NoisyBlobs(std::size_t n_per_class, double noise, Rng& rng) {
  Dataset data(4, 3, {"a", "b", "c", "d"});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 3; ++cls) {
      const double angle = cls * 2.094;
      const double row[] = {3.0 * std::cos(angle) + rng.Normal(0, noise),
                            3.0 * std::sin(angle) + rng.Normal(0, noise),
                            rng.Normal(0, 1.0), rng.Normal(0, 1.0)};
      data.AddRow(std::span<const double>(row, 4), cls);
    }
  }
  return data;
}

double Accuracy(const Classifier& model, const Dataset& data) {
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += model.Predict(data.row(i)) == data.label(i);
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(RandomForest, LearnsThreeClassBlobs) {
  Rng rng(1);
  const Dataset train = NoisyBlobs(150, 0.8, rng);
  const Dataset test = NoisyBlobs(80, 0.8, rng);
  auto forest = MakeRandomForest();
  Rng fit_rng(2);
  forest->Fit(train, fit_rng);
  EXPECT_GT(Accuracy(*forest, test), 0.9);
}

TEST(RandomForest, ProbabilitiesSumToOne) {
  Rng rng(3);
  const Dataset train = NoisyBlobs(50, 0.8, rng);
  RandomForestOptions options;
  options.n_trees = 20;
  RandomForestClassifier forest(options);
  Rng fit_rng(4);
  forest.Fit(train, fit_rng);
  for (std::size_t i = 0; i < train.size(); i += 7) {
    const auto proba = forest.PredictProba(train.row(i));
    double total = 0.0;
    for (double p : proba) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RandomForest, DeterministicGivenSeed) {
  Rng rng(5);
  const Dataset train = NoisyBlobs(60, 1.0, rng);
  auto a = MakeRandomForest();
  auto b = MakeRandomForest();
  Rng ra(9), rb(9);
  a->Fit(train, ra);
  b->Fit(train, rb);
  for (std::size_t i = 0; i < train.size(); i += 5) {
    EXPECT_EQ(a->PredictProba(train.row(i)), b->PredictProba(train.row(i)));
  }
}

TEST(RandomForest, TreeCountMatchesOptions) {
  Rng rng(6);
  const Dataset train = NoisyBlobs(20, 0.5, rng);
  RandomForestOptions options;
  options.n_trees = 13;
  RandomForestClassifier forest(options);
  Rng fit_rng(7);
  forest.Fit(train, fit_rng);
  EXPECT_EQ(forest.tree_count(), 13u);
}

TEST(RandomForest, WorksWithoutBootstrap) {
  Rng rng(8);
  const Dataset train = NoisyBlobs(50, 0.5, rng);
  RandomForestOptions options;
  options.bootstrap = false;
  options.n_trees = 10;
  RandomForestClassifier forest(options);
  Rng fit_rng(9);
  forest.Fit(train, fit_rng);
  EXPECT_GT(Accuracy(forest, train), 0.95);
}

TEST(RandomForest, BeatsASingleShallowTree) {
  Rng rng(10);
  const Dataset train = NoisyBlobs(120, 1.6, rng);
  const Dataset test = NoisyBlobs(120, 1.6, rng);

  RandomForestOptions single_options;
  single_options.n_trees = 1;
  single_options.max_depth = 3;
  RandomForestClassifier single(single_options);
  RandomForestOptions forest_options;
  forest_options.n_trees = 100;
  RandomForestClassifier forest(forest_options);
  Rng r1(11), r2(11);
  single.Fit(train, r1);
  forest.Fit(train, r2);
  EXPECT_GE(Accuracy(forest, test), Accuracy(single, test));
}

TEST(RandomForest, RejectsBadUse) {
  EXPECT_THROW(RandomForestClassifier(RandomForestOptions{.n_trees = 0}),
               ContractViolation);
  auto forest = MakeRandomForest();
  const double x[] = {0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(forest->PredictProba(std::span<const double>(x, 4)),
               ContractViolation);
}

TEST(RandomForest, NameIsStable) {
  EXPECT_EQ(MakeRandomForest()->name(), "RandomForest");
}

}  // namespace
}  // namespace cordial::ml
