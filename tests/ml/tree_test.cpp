#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::ml {
namespace {

std::vector<std::size_t> AllIndices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

/// Two Gaussian blobs separated along feature 0, plus a noise feature.
Dataset Blobs(std::size_t n_per_class, Rng& rng) {
  Dataset data(2, 2);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    const double a[] = {rng.Normal(-2.0, 0.5), rng.Normal(0.0, 1.0)};
    data.AddRow(std::span<const double>(a, 2), 0);
    const double b[] = {rng.Normal(2.0, 0.5), rng.Normal(0.0, 1.0)};
    data.AddRow(std::span<const double>(b, 2), 1);
  }
  return data;
}

// --------------------------------------------------- classification tree

TEST(ClassificationTree, LearnsAxisAlignedSplit) {
  Rng rng(1);
  const Dataset data = Blobs(100, rng);
  ClassificationTree tree;
  tree.Fit(data, AllIndices(data.size()), rng);
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += tree.Predict(data.row(i)) == data.label(i);
  }
  EXPECT_EQ(correct, static_cast<int>(data.size()));
}

TEST(ClassificationTree, LearnsXorWithDepthTwo) {
  // XOR needs two levels of splits; a depth-1 stump cannot fit it.
  Dataset data(2, 2);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    const double y = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    const double row[] = {x + rng.Normal(0, 0.05), y + rng.Normal(0, 0.05)};
    data.AddRow(std::span<const double>(row, 2), x * y > 0 ? 1 : 0);
  }
  ClassificationTree deep;
  deep.Fit(data, AllIndices(data.size()), rng);
  int correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += deep.Predict(data.row(i)) == data.label(i);
  }
  EXPECT_GT(correct, 195);

  ClassificationTreeOptions stump_options;
  stump_options.max_depth = 1;
  ClassificationTree stump(stump_options);
  stump.Fit(data, AllIndices(data.size()), rng);
  int stump_correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    stump_correct += stump.Predict(data.row(i)) == data.label(i);
  }
  EXPECT_LT(stump_correct, 140);  // ~chance for XOR
  EXPECT_LE(stump.depth(), 1);
}

TEST(ClassificationTree, PureNodeBecomesLeafImmediately) {
  Dataset data(1, 2);
  for (int i = 0; i < 10; ++i) {
    const double x = i;
    data.AddRow(std::span<const double>(&x, 1), 1);
  }
  Rng rng(3);
  ClassificationTree tree;
  tree.Fit(data, AllIndices(data.size()), rng);
  EXPECT_EQ(tree.node_count(), 1u);
  const double x = 100.0;
  EXPECT_EQ(tree.Predict(std::span<const double>(&x, 1)), 1);
}

TEST(ClassificationTree, ProbaIsLeafFrequencyAndSumsToOne) {
  Dataset data(1, 2);
  // One region: 3 of class 0, 1 of class 1, not separable (same feature).
  for (int i = 0; i < 4; ++i) {
    const double x = 1.0;
    data.AddRow(std::span<const double>(&x, 1), i == 0 ? 1 : 0);
  }
  Rng rng(4);
  ClassificationTree tree;
  tree.Fit(data, AllIndices(data.size()), rng);
  const double q = 1.0;
  const auto proba = tree.PredictProba(std::span<const double>(&q, 1));
  EXPECT_NEAR(proba[0], 0.75, 1e-12);
  EXPECT_NEAR(proba[1], 0.25, 1e-12);
}

TEST(ClassificationTree, MinSamplesLeafIsHonored) {
  Rng rng(5);
  const Dataset data = Blobs(50, rng);
  ClassificationTreeOptions options;
  options.min_samples_leaf = 40;
  ClassificationTree tree(options);
  tree.Fit(data, AllIndices(data.size()), rng);
  // With 100 samples and a 40-sample floor, at most one split is possible
  // per path; the tree stays tiny.
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(ClassificationTree, BootstrapIndicesWithDuplicatesWork) {
  Rng rng(6);
  const Dataset data = Blobs(30, rng);
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < data.size(); ++i) {
    indices.push_back(i / 2 * 2);  // duplicates, subset
  }
  ClassificationTree tree;
  tree.Fit(data, indices, rng);
  EXPECT_GE(tree.node_count(), 1u);
}

TEST(ClassificationTree, UnfittedPredictThrows) {
  ClassificationTree tree;
  const double x = 0.0;
  EXPECT_THROW(tree.Predict(std::span<const double>(&x, 1)),
               ContractViolation);
}

TEST(ClassificationTree, EmptyFitThrows) {
  Rng rng(7);
  const Dataset data = Blobs(5, rng);
  ClassificationTree tree;
  EXPECT_THROW(tree.Fit(data, {}, rng), ContractViolation);
}

// ------------------------------------------------------ regression tree

TEST(RegressionTree, NewtonLeafValueOnSingleLeaf) {
  // All samples in one leaf: value = -G/(H+lambda).
  Dataset data(1, 2);
  for (int i = 0; i < 4; ++i) {
    const double x = 1.0;  // constant feature -> no split possible
    data.AddRow(std::span<const double>(&x, 1), 0);
  }
  const std::vector<double> grad = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> hess = {1.0, 1.0, 1.0, 1.0};
  RegressionTreeOptions options;
  options.lambda = 1.0;
  RegressionTree tree(options);
  Rng rng(8);
  tree.Fit(data, AllIndices(4), grad, hess, rng, nullptr);
  const double x = 1.0;
  EXPECT_NEAR(tree.Predict(std::span<const double>(&x, 1)), -4.0 / 5.0, 1e-12);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(RegressionTree, SplitsOnStepFunction) {
  Dataset data(1, 2);
  std::vector<double> grad, hess;
  for (int i = 0; i < 20; ++i) {
    const double x = i;
    data.AddRow(std::span<const double>(&x, 1), 0);
    grad.push_back(i < 10 ? 1.0 : -1.0);
    hess.push_back(1.0);
  }
  RegressionTreeOptions options;
  options.lambda = 0.0;
  options.max_depth = 1;
  RegressionTree tree(options);
  Rng rng(9);
  tree.Fit(data, AllIndices(20), grad, hess, rng, nullptr);
  EXPECT_EQ(tree.leaf_count(), 2u);
  const double lo = 3.0, hi = 15.0;
  EXPECT_NEAR(tree.Predict(std::span<const double>(&lo, 1)), -1.0, 1e-9);
  EXPECT_NEAR(tree.Predict(std::span<const double>(&hi, 1)), 1.0, 1e-9);
}

TEST(RegressionTree, GammaSuppressesWeakSplits) {
  Dataset data(1, 2);
  std::vector<double> grad, hess;
  Rng noise(10);
  for (int i = 0; i < 50; ++i) {
    const double x = i;
    data.AddRow(std::span<const double>(&x, 1), 0);
    grad.push_back(noise.Normal(0.0, 0.01));  // nearly no signal
    hess.push_back(1.0);
  }
  RegressionTreeOptions options;
  options.gamma = 10.0;  // demands large gain
  RegressionTree tree(options);
  Rng rng(11);
  tree.Fit(data, AllIndices(50), grad, hess, rng, nullptr);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(RegressionTree, MaxLeavesCapsLeafWiseGrowth) {
  Dataset data(1, 2);
  std::vector<double> grad, hess;
  for (int i = 0; i < 64; ++i) {
    const double x = i;
    data.AddRow(std::span<const double>(&x, 1), 0);
    grad.push_back(std::sin(i * 0.7));  // rich structure
    hess.push_back(1.0);
  }
  RegressionTreeOptions options;
  options.max_depth = 0;
  options.max_leaves = 4;
  RegressionTree tree(options);
  Rng rng(12);
  tree.Fit(data, AllIndices(64), grad, hess, rng, nullptr);
  EXPECT_LE(tree.leaf_count(), 4u);
  EXPECT_GE(tree.leaf_count(), 2u);
}

TEST(RegressionTree, HistogramApproximatesExactOnStep) {
  Dataset data(1, 2);
  std::vector<double> grad, hess;
  for (int i = 0; i < 100; ++i) {
    const double x = i;
    data.AddRow(std::span<const double>(&x, 1), 0);
    grad.push_back(i < 50 ? 2.0 : -2.0);
    hess.push_back(1.0);
  }
  RegressionTreeOptions options;
  options.max_bins = 16;
  options.max_depth = 2;
  options.lambda = 0.0;
  FeatureBinner binner(data, {}, 16);
  RegressionTree tree(options);
  Rng rng(13);
  tree.Fit(data, AllIndices(100), grad, hess, rng, &binner);
  const double lo = 10.0, hi = 90.0;
  EXPECT_LT(tree.Predict(std::span<const double>(&lo, 1)), -1.5);
  EXPECT_GT(tree.Predict(std::span<const double>(&hi, 1)), 1.5);
}

TEST(RegressionTree, BinnerRequiredIffHistogramMode) {
  Dataset data(1, 2);
  const double x = 1.0;
  data.AddRow(std::span<const double>(&x, 1), 0);
  const std::vector<double> g = {1.0}, h = {1.0};
  Rng rng(14);
  RegressionTreeOptions hist_options;
  hist_options.max_bins = 8;
  RegressionTree hist_tree(hist_options);
  EXPECT_THROW(hist_tree.Fit(data, {0}, g, h, rng, nullptr),
               ContractViolation);

  FeatureBinner binner(data, {}, 8);
  RegressionTree exact_tree;
  EXPECT_THROW(exact_tree.Fit(data, {0}, g, h, rng, &binner),
               ContractViolation);
}

// ------------------------------------------------------------- binner

TEST(FeatureBinner, ConstantFeatureHasOneBin) {
  Dataset data(1, 2);
  for (int i = 0; i < 10; ++i) {
    const double x = 7.0;
    data.AddRow(std::span<const double>(&x, 1), 0);
  }
  FeatureBinner binner(data, {}, 16);
  EXPECT_EQ(binner.NumBins(0), 1);
  EXPECT_EQ(binner.BinOf(0, 7.0), 0);
  EXPECT_EQ(binner.BinOf(0, -100.0), 0);
}

TEST(FeatureBinner, FewDistinctValuesGetExactBins) {
  Dataset data(1, 2);
  for (double v : {1.0, 2.0, 3.0, 1.0, 2.0}) {
    data.AddRow(std::span<const double>(&v, 1), 0);
  }
  FeatureBinner binner(data, {}, 16);
  EXPECT_EQ(binner.NumBins(0), 3);
  EXPECT_EQ(binner.BinOf(0, 1.0), 0);
  EXPECT_EQ(binner.BinOf(0, 2.0), 1);
  EXPECT_EQ(binner.BinOf(0, 3.0), 2);
  EXPECT_EQ(binner.BinOf(0, 0.0), 0);
  EXPECT_EQ(binner.BinOf(0, 99.0), 2);
}

TEST(FeatureBinner, BinOfIsMonotone) {
  Dataset data(1, 2);
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(0, 10);
    data.AddRow(std::span<const double>(&x, 1), 0);
  }
  FeatureBinner binner(data, {}, 32);
  int prev = 0;
  for (double x = -40.0; x <= 40.0; x += 0.5) {
    const int bin = binner.BinOf(0, x);
    EXPECT_GE(bin, prev);
    EXPECT_LT(bin, binner.NumBins(0));
    prev = bin;
  }
}

TEST(FeatureBinner, UpperEdgeConsistentWithBinOf) {
  Dataset data(1, 2);
  for (double v : {0.0, 10.0, 20.0, 30.0}) {
    data.AddRow(std::span<const double>(&v, 1), 0);
  }
  FeatureBinner binner(data, {}, 8);
  for (int b = 0; b + 1 < binner.NumBins(0); ++b) {
    const double edge = binner.BinUpperEdge(0, b);
    EXPECT_EQ(binner.BinOf(0, edge), b);          // value <= edge -> bin b
    EXPECT_EQ(binner.BinOf(0, edge + 1e-9), b + 1);
  }
  EXPECT_TRUE(std::isinf(
      binner.BinUpperEdge(0, binner.NumBins(0) - 1)));
}

TEST(FeatureBinner, RespectsIndexSubset) {
  Dataset data(1, 2);
  for (double v : {1.0, 2.0, 1000.0}) {
    data.AddRow(std::span<const double>(&v, 1), 0);
  }
  // Build only from the first two rows.
  FeatureBinner binner(data, {0, 1}, 8);
  EXPECT_EQ(binner.NumBins(0), 2);
}

TEST(FeatureBinner, RejectsTooFewBins) {
  Dataset data(1, 2);
  const double x = 0.0;
  data.AddRow(std::span<const double>(&x, 1), 0);
  EXPECT_THROW(FeatureBinner(data, {}, 1), ContractViolation);
}

}  // namespace
}  // namespace cordial::ml
