// OutcomeCollector: maturity rules, hindsight labels, replay-store bounds,
// the deterministic train/holdout split and the framed Save/Load round trip.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/check.hpp"
#include "learn/outcome_log.hpp"

namespace cordial::learn {
namespace {

using hbm::ErrorType;

/// Builder for one synthetic bank's records: a distinct bank per index, UERs
/// at the given rows one second apart starting at `start_s`.
std::vector<trace::MceRecord> UerBurst(std::uint32_t bank,
                                       const std::vector<std::uint32_t>& rows,
                                       double start_s) {
  std::vector<trace::MceRecord> records;
  double t = start_s;
  for (const std::uint32_t row : rows) {
    trace::MceRecord r;
    r.time_s = t;
    r.address.bank = bank % 4;
    r.address.bank_group = (bank / 4) % 4;
    r.address.channel = bank / 16;  // 64 distinct banks before overflow
    r.address.row = row;
    r.type = ErrorType::kUer;
    records.push_back(r);
    t += 1.0;
  }
  return records;
}

void FeedAll(OutcomeCollector& collector,
             const std::vector<trace::MceRecord>& records) {
  for (const trace::MceRecord& r : records) {
    collector.Record(r, core::IsolationActions{});
  }
}

TEST(LearnCollector, MaturityNeedsMinUersAndHorizon) {
  hbm::TopologyConfig topology;
  CollectorConfig config;
  config.label_maturity_s = 100.0;
  config.min_uers = 3;
  OutcomeCollector collector(topology, config);

  // Bank 0: three UERs from t=0 — matures once now >= first UER + 100.
  FeedAll(collector, UerBurst(0, {10, 11, 12}, 0.0));
  // Bank 1: only two UERs — never matures regardless of horizon.
  FeedAll(collector, UerBurst(1, {20, 21}, 0.0));

  EXPECT_EQ(collector.HarvestMature(50.0), 0u);  // horizon not reached
  EXPECT_EQ(collector.HarvestMature(100.0), 1u);
  EXPECT_EQ(collector.HarvestMature(1e9), 0u);  // bank 1 still short on UERs

  const CollectorStats stats = collector.Stats();
  EXPECT_EQ(stats.replay_banks, 1u);
  EXPECT_EQ(stats.open_banks, 1u);
  EXPECT_EQ(stats.matured_total, 1u);
}

TEST(LearnCollector, LabelsMatchTheHindsightLabeler) {
  hbm::TopologyConfig topology;
  CollectorConfig config;
  config.label_maturity_s = 0.0;
  OutcomeCollector collector(topology, config);

  // A tight row cluster (single-row clustering) and a scattered bank.
  const auto clustered = UerBurst(0, {100, 101, 102, 103}, 0.0);
  const auto scattered = UerBurst(1, {10, 5000, 9000, 12000}, 0.0);
  FeedAll(collector, clustered);
  FeedAll(collector, scattered);
  ASSERT_EQ(collector.HarvestMature(collector.MaxTimeSeen()), 2u);

  const OutcomeCollector::ReplaySplit split = collector.SnapshotReplay();
  analysis::PatternLabeler labeler(topology);
  std::size_t checked = 0;
  for (const auto& list : {split.train, split.holdout}) {
    for (const auto& outcome : list) {
      EXPECT_EQ(outcome->label, labeler.LabelClass(outcome->bank));
      EXPECT_FALSE(outcome->truncated);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 2u);
}

TEST(LearnCollector, OneOutcomePerBank) {
  hbm::TopologyConfig topology;
  CollectorConfig config;
  config.label_maturity_s = 0.0;
  OutcomeCollector collector(topology, config);

  FeedAll(collector, UerBurst(0, {10, 11, 12}, 0.0));
  ASSERT_EQ(collector.HarvestMature(collector.MaxTimeSeen()), 1u);

  // The bank keeps failing after harvest; those records must not spawn a
  // second (mislabelled — it would lack the early history) outcome.
  FeedAll(collector, UerBurst(0, {13, 14, 15}, 10.0));
  EXPECT_EQ(collector.HarvestMature(collector.MaxTimeSeen()), 0u);
  EXPECT_EQ(collector.Stats().replay_banks, 1u);
  EXPECT_EQ(collector.Stats().open_banks, 0u);
}

TEST(LearnCollector, PerBankEventCapTruncates) {
  hbm::TopologyConfig topology;
  CollectorConfig config;
  config.label_maturity_s = 0.0;
  config.per_bank_event_cap = 4;
  OutcomeCollector collector(topology, config);

  FeedAll(collector, UerBurst(0, {10, 11, 12, 13, 14, 15}, 0.0));
  ASSERT_EQ(collector.HarvestMature(collector.MaxTimeSeen()), 1u);
  const OutcomeCollector::ReplaySplit split = collector.SnapshotReplay();
  const auto& outcome =
      split.train.empty() ? split.holdout.front() : split.train.front();
  EXPECT_TRUE(outcome->truncated);
  EXPECT_EQ(outcome->bank.events.size(), 4u);
  EXPECT_EQ(collector.Stats().events_dropped_cap, 2u);
}

TEST(LearnCollector, ReplayStoreEvictsFifoAtCap) {
  hbm::TopologyConfig topology;
  CollectorConfig config;
  config.label_maturity_s = 0.0;
  config.max_replay_banks = 3;
  OutcomeCollector collector(topology, config);

  for (std::uint32_t bank = 0; bank < 5; ++bank) {
    FeedAll(collector, UerBurst(bank, {10, 11, 12}, bank * 10.0));
    collector.HarvestMature(collector.MaxTimeSeen());
  }
  const CollectorStats stats = collector.Stats();
  EXPECT_EQ(stats.replay_banks, 3u);
  EXPECT_EQ(stats.matured_total, 5u);
  EXPECT_EQ(stats.evicted_total, 2u);
}

TEST(LearnCollector, SplitIsDeterministicAndDisjoint) {
  hbm::TopologyConfig topology;
  CollectorConfig config;
  config.label_maturity_s = 0.0;
  config.holdout_modulus = 3;
  OutcomeCollector collector(topology, config);

  for (std::uint32_t bank = 0; bank < 30; ++bank) {
    FeedAll(collector, UerBurst(bank, {10, 11, 12}, 0.0));
  }
  collector.HarvestMature(collector.MaxTimeSeen());
  const auto split_a = collector.SnapshotReplay();
  const auto split_b = collector.SnapshotReplay();
  ASSERT_EQ(split_a.train.size(), split_b.train.size());
  ASSERT_EQ(split_a.holdout.size(), split_b.holdout.size());
  EXPECT_EQ(split_a.train.size() + split_a.holdout.size(), 30u);
  EXPECT_GT(split_a.train.size(), 0u);
  EXPECT_GT(split_a.holdout.size(), 0u);
  for (const auto& outcome : split_a.train) {
    EXPECT_FALSE(collector.IsHoldoutKey(outcome->bank.bank_key));
  }
  for (const auto& outcome : split_a.holdout) {
    EXPECT_TRUE(collector.IsHoldoutKey(outcome->bank.bank_key));
  }
  // Sorted by key: a deterministic training order regardless of the thread
  // interleaving that filled the stripes.
  for (std::size_t i = 1; i < split_a.train.size(); ++i) {
    EXPECT_LT(split_a.train[i - 1]->bank.bank_key,
              split_a.train[i]->bank.bank_key);
  }
}

TEST(LearnCollector, LiveClassMixTallies) {
  hbm::TopologyConfig topology;
  OutcomeCollector collector(topology);
  const auto records = UerBurst(0, {10, 11, 12}, 0.0);
  core::IsolationActions classified;
  classified.classified_now = true;
  classified.bank_class = hbm::FailureClass::kDoubleRowClustering;
  collector.Record(records[0], classified);
  collector.Record(records[1], core::IsolationActions{});
  const std::array<std::uint64_t, 3> mix = collector.LiveClassMix();
  EXPECT_EQ(mix[static_cast<std::size_t>(
                hbm::FailureClass::kDoubleRowClustering)],
            1u);
  EXPECT_EQ(mix[static_cast<std::size_t>(
                hbm::FailureClass::kSingleRowClustering)],
            0u);
}

TEST(LearnCollector, SaveLoadRoundTripsByteIdentically) {
  hbm::TopologyConfig topology;
  CollectorConfig config;
  config.label_maturity_s = 0.0;
  OutcomeCollector collector(topology, config);
  for (std::uint32_t bank = 0; bank < 8; ++bank) {
    FeedAll(collector, UerBurst(bank, {100 + bank, 101 + bank, 102 + bank},
                                bank * 2.0));
  }
  // Coverage tallies must survive the round trip too.
  core::IsolationActions covered;
  covered.first_failure = true;
  covered.covered_by_row_spare = true;
  auto extra = UerBurst(9, {50, 51, 52}, 0.0);
  for (const auto& r : extra) collector.Record(r, covered);
  collector.HarvestMature(collector.MaxTimeSeen());

  std::ostringstream saved;
  collector.Save(saved);

  OutcomeCollector restored(topology, config);
  std::istringstream in(saved.str());
  restored.Load(in);
  std::ostringstream resaved;
  restored.Save(resaved);
  EXPECT_EQ(resaved.str(), saved.str());
  EXPECT_EQ(restored.Stats().replay_banks, collector.Stats().replay_banks);

  const auto split = restored.SnapshotReplay();
  std::size_t covered_banks = 0;
  for (const auto& list : {split.train, split.holdout}) {
    for (const auto& outcome : list) {
      if (outcome->live_covered > 0) ++covered_banks;
    }
  }
  EXPECT_EQ(covered_banks, 1u);
}

TEST(LearnCollector, LoadRejectsCorruptStreams) {
  hbm::TopologyConfig topology;
  OutcomeCollector collector(topology);
  std::istringstream garbage("not a frame at all");
  EXPECT_THROW(collector.Load(garbage), ParseError);
  // A throw must leave the store unchanged.
  EXPECT_EQ(collector.Stats().replay_banks, 0u);
}

}  // namespace
}  // namespace cordial::learn
