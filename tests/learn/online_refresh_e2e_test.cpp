// End-to-end online refresh: a weak champion serves a sharded fleet feed
// whose outcomes flow back through an OutcomeCollector; a ShadowTrainer
// round trains a challenger that beats the champion on held-out replay and
// hot-swaps it into the serving slot with zero dropped or reordered
// records; metrics and /modelz reflect the promotion; and a checkpoint
// taken after the swap restores and resumes byte-identically.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/model_slot.hpp"
#include "core/pattern_classifier.hpp"
#include "learn/outcome_log.hpp"
#include "learn/shadow_trainer.hpp"
#include "support/serve_world.hpp"

namespace cordial::learn {
namespace {

using serve::test_support::SharedWorld;
using serve::test_support::World;

TEST(LearnOnlineRefresh, EndToEndPromotionHotSwapAndCheckpoint) {
  const World& w = SharedWorld();
  const std::vector<trace::MceRecord>& records = w.fleet.log.records();

  // A deliberately starved champion: fitted on the first two UER banks
  // only. The drifted fleet mix it now faces is everything it never saw.
  hbm::AddressCodec codec(w.topology);
  const auto banks = w.fleet.log.GroupByBank(codec);
  analysis::PatternLabeler labeler(w.topology);
  std::vector<core::LabelledBank> starve;
  for (const trace::BankHistory& bank : banks) {
    if (!bank.HasUer()) continue;
    starve.push_back({&bank, labeler.LabelClass(bank)});
    if (starve.size() >= 2) break;
  }
  core::PatternClassifier weak_champion(w.topology,
                                        ml::LearnerKind::kRandomForest);
  Rng rng(7);
  weak_champion.Train(starve, rng);

  core::ModelSet boot;
  boot.classifier = core::UnownedModel(weak_champion);
  boot.single = core::UnownedModel(w.single_pred);
  if (w.double_ok) boot.double_row = core::UnownedModel(w.double_pred);
  core::ModelSlot slot(std::move(boot));

  CollectorConfig cc;
  cc.label_maturity_s = 0.0;
  cc.holdout_modulus = 3;
  OutcomeCollector collector(w.topology, cc);

  serve::FleetServerConfig config;
  config.shard_count = 3;
  config.model_slot = &slot;
  serve::FleetServer server(
      w.topology, weak_champion, w.single_pred, w.double_or_null(), config,
      [&collector](std::size_t, const trace::MceRecord& record,
                   const core::IsolationActions& actions) {
        collector.Record(record, actions);
      });
  server.Start();

  // Phase 1: serve the first half of the feed under the weak champion.
  const std::size_t half = records.size() / 2;
  server.SubmitBatch(std::span<const trace::MceRecord>(&records[0], half));
  server.Drain();
  ASSERT_GT(collector.Stats().open_banks, 0u);

  // Phase 2: one training round. The challenger (fresh fit on everything
  // the collector matured) must beat the starved champion on held-out ICR
  // without regressing macro-F1 — the real promotion gates, not test-only
  // permissive ones.
  TrainerConfig tc;
  tc.promotion_min_icr = 0.0;
  tc.min_icr_gain = 0.0;
  tc.max_f1_regression = 0.05;
  tc.min_train_outcomes = 2;
  tc.min_holdout_outcomes = 1;
  ShadowTrainer trainer(w.topology, slot, collector, tc);
  obs::MetricRegistry registry;
  trainer.AttachMetrics(registry);

  const RoundResult round = trainer.RunOnce();
  ASSERT_TRUE(round.trained) << round.skip_reason;
  ASSERT_TRUE(round.promoted) << round.skip_reason;
  EXPECT_GE(round.challenger_icr, round.champion_icr);
  EXPECT_EQ(round.published_version, 2u);
  EXPECT_EQ(slot.version(), 2u);
  EXPECT_GE(round.drift.mix_divergence, 0.0);
  EXPECT_LE(round.drift.mix_divergence, 1.0);

  // Phase 3: serve the rest of the feed — every shard adopts generation 2
  // at its next record boundary.
  server.SubmitBatch(
      std::span<const trace::MceRecord>(&records[half], records.size() - half));
  server.Stop();
  for (const std::uint64_t version : server.ModelVersions()) {
    EXPECT_EQ(version, 2u);
  }

  // Zero dropped, zero reordered: every submitted record was processed.
  const serve::ShardCounters counters = server.AggregateCounters();
  EXPECT_EQ(counters.submitted, records.size());
  EXPECT_EQ(counters.processed, records.size());
  EXPECT_EQ(counters.dropped_oldest, 0u);
  EXPECT_EQ(counters.rejected, 0u);

  // The promotion is visible in metrics and on /modelz.
  const obs::RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(obs::SumCounterSamples(snap, "cordial_learn_promotions_total"),
            1u);
  EXPECT_EQ(obs::SumGaugeSamples(snap, "cordial_learn_model_version"), 2);
  EXPECT_GT(obs::SumGaugeSamples(snap, "cordial_learn_replay_banks"), 0);
  const std::string page = trainer.StatusPage();
  EXPECT_NE(page.find("slot version: 2"), std::string::npos) << page;
  EXPECT_NE(page.find("PROMOTED as generation 2"), std::string::npos) << page;

  // Phase 4: the checkpoint taken after the swap carries no model-version
  // state — it restores into a fresh slot-attached server byte-identically.
  std::ostringstream checkpoint;
  server.SaveCheckpoint(checkpoint);
  serve::FleetServer restored(w.topology, weak_champion, w.single_pred,
                              w.double_or_null(), config);
  std::istringstream in(checkpoint.str());
  restored.RestoreCheckpoint(in);
  std::ostringstream resaved;
  restored.SaveCheckpoint(resaved);
  EXPECT_EQ(resaved.str(), checkpoint.str());
  EXPECT_EQ(restored.AggregateStats(), server.AggregateStats());
}

}  // namespace
}  // namespace cordial::learn
