// Model-compatibility guards for the online refresh loop: feature-count
// mismatches are rejected at load time (naming both counts), and cloned
// models — the copy path the shadow trainer relies on — are bit-identical
// to their originals.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "core/crossrow.hpp"
#include "core/pattern_classifier.hpp"
#include "core/persist.hpp"
#include "support/serve_world.hpp"

namespace cordial::core {
namespace {

using serve::test_support::SharedWorld;
using serve::test_support::World;

/// Re-frame a saved model with its "features <n>" payload token bumped by
/// `delta`, returning the tampered stream and the original count.
std::string TamperFeatureCount(const std::string& framed,
                               const std::string& magic, std::uint64_t delta,
                               std::uint64_t* original) {
  std::istringstream in(framed);
  std::string payload = ReadFramed(in, magic, kModelFrameVersion);
  std::istringstream scan(payload);
  std::string token;
  std::uint64_t count = 0;
  scan >> token >> count;
  EXPECT_EQ(token, "features");
  *original = count;
  const std::string needle = "features " + std::to_string(count);
  const std::string replacement = "features " + std::to_string(count + delta);
  const std::size_t at = payload.find(needle);
  EXPECT_NE(at, std::string::npos);
  payload.replace(at, needle.size(), replacement);
  std::ostringstream out;
  WriteFramed(out, magic, kModelFrameVersion, payload);
  return out.str();
}

TEST(LearnModelCompat, PatternClassifierRejectsFeatureCountMismatch) {
  const World& world = SharedWorld();
  std::ostringstream saved;
  world.classifier.SaveModel(saved);

  std::uint64_t original = 0;
  const std::string tampered =
      TamperFeatureCount(saved.str(), kPatternModelMagic, 3, &original);
  PatternClassifier fresh(world.topology, ml::LearnerKind::kRandomForest);
  std::istringstream in(tampered);
  try {
    fresh.LoadModel(in);
    FAIL() << "mismatched feature count was accepted";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("feature count mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(original + 3)), std::string::npos)
        << what;
    EXPECT_NE(what.find("expects " + std::to_string(original)),
              std::string::npos)
        << what;
  }
}

TEST(LearnModelCompat, CrossRowPredictorRejectsFeatureCountMismatch) {
  const World& world = SharedWorld();
  std::ostringstream saved;
  world.single_pred.SaveModel(saved);

  std::uint64_t original = 0;
  const std::string tampered =
      TamperFeatureCount(saved.str(), kCrossRowModelMagic, 5, &original);
  CrossRowPredictor fresh(world.topology, ml::LearnerKind::kRandomForest);
  std::istringstream in(tampered);
  try {
    fresh.LoadModel(in);
    FAIL() << "mismatched feature count was accepted";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("feature count mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(original + 5)), std::string::npos)
        << what;
    EXPECT_NE(what.find("expects " + std::to_string(original)),
              std::string::npos)
        << what;
  }
}

TEST(LearnModelCompat, UntamperedModelsStillRoundTrip) {
  const World& world = SharedWorld();
  std::ostringstream saved;
  world.classifier.SaveModel(saved);
  PatternClassifier fresh(world.topology, ml::LearnerKind::kRandomForest);
  std::istringstream in(saved.str());
  fresh.LoadModel(in);
  std::ostringstream resaved;
  fresh.SaveModel(resaved);
  EXPECT_EQ(resaved.str(), saved.str());
}

TEST(LearnModelCompat, ClassifierCopyIsBitIdentical) {
  const World& world = SharedWorld();
  const PatternClassifier copy(world.classifier);  // deep Clone() under it
  std::ostringstream a, b;
  world.classifier.SaveModel(a);
  copy.SaveModel(b);
  EXPECT_EQ(a.str(), b.str());

  hbm::AddressCodec codec(world.topology);
  for (const trace::BankHistory& bank : world.fleet.log.GroupByBank(codec)) {
    if (!bank.HasUer()) continue;
    EXPECT_EQ(copy.Classify(bank), world.classifier.Classify(bank));
    EXPECT_EQ(copy.ClassifyProba(bank), world.classifier.ClassifyProba(bank));
  }
}

TEST(LearnModelCompat, BoostedClassifierCloneIsBitIdentical) {
  const World& world = SharedWorld();
  hbm::AddressCodec codec(world.topology);
  const auto banks = world.fleet.log.GroupByBank(codec);
  analysis::PatternLabeler labeler(world.topology);
  std::vector<LabelledBank> labelled;
  for (const trace::BankHistory& bank : banks) {
    if (bank.HasUer()) labelled.push_back({&bank, labeler.LabelClass(bank)});
  }
  PatternClassifier boosted(world.topology, ml::LearnerKind::kXgbStyle);
  Rng rng(11);
  boosted.Train(labelled, rng);

  const PatternClassifier copy(boosted);  // exercises the booster Clone()
  std::ostringstream a, b;
  boosted.SaveModel(a);
  copy.SaveModel(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(LearnModelCompat, CrossRowCopyIsBitIdentical) {
  const World& world = SharedWorld();
  const CrossRowPredictor copy(world.single_pred);
  std::ostringstream a, b;
  world.single_pred.SaveModel(a);
  copy.SaveModel(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace cordial::core
