// ShadowTrainer: champion/challenger rounds against the shared serving
// World — promotion plumbing, gate refusals, forced swap/rollback, and the
// reproducibility of the whole round history from (seed, feed).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "common/rng.hpp"
#include "core/model_slot.hpp"
#include "core/pattern_classifier.hpp"
#include "learn/outcome_log.hpp"
#include "learn/shadow_trainer.hpp"
#include "support/serve_world.hpp"

namespace cordial::learn {
namespace {

using serve::test_support::SharedWorld;
using serve::test_support::World;

/// A trainer test rig: the World's predictors plus a deliberately weak
/// champion classifier (fitted on almost nothing) seeded into a slot, and a
/// collector fed the whole World fleet log with an immediate-maturity
/// horizon so RunOnce has a populated replay store to work from.
struct Rig {
  const World& world = SharedWorld();
  std::unique_ptr<core::PatternClassifier> champion;
  std::unique_ptr<core::ModelSlot> slot;
  std::unique_ptr<OutcomeCollector> collector;

  explicit Rig(std::size_t champion_banks = 2) {
    hbm::AddressCodec codec(world.topology);
    const auto banks = world.fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(world.topology);
    std::vector<core::LabelledBank> starve;
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      starve.push_back({&bank, labeler.LabelClass(bank)});
      if (starve.size() >= champion_banks) break;
    }
    champion = std::make_unique<core::PatternClassifier>(
        world.topology, ml::LearnerKind::kRandomForest);
    Rng rng(7);
    champion->Train(starve, rng);

    core::ModelSet boot;
    boot.classifier = core::UnownedModel(*champion);
    boot.single = core::UnownedModel(world.single_pred);
    if (world.double_ok) {
      boot.double_row = core::UnownedModel(world.double_pred);
    }
    slot = std::make_unique<core::ModelSlot>(std::move(boot));

    CollectorConfig cc;
    cc.label_maturity_s = 0.0;
    cc.holdout_modulus = 3;
    collector = std::make_unique<OutcomeCollector>(world.topology, cc);
    for (const trace::MceRecord& record : world.fleet.log.records()) {
      collector->Record(record, core::IsolationActions{});
    }
  }

  TrainerConfig PermissiveGates() const {
    TrainerConfig tc;
    tc.promotion_min_icr = 0.0;
    tc.min_icr_gain = -1.0;       // any challenger wins
    tc.max_f1_regression = 1.0;
    tc.min_train_outcomes = 2;
    tc.min_holdout_outcomes = 1;
    return tc;
  }
};

TEST(LearnTrainer, SkipsWhenReplayTooSmall) {
  Rig rig;
  OutcomeCollector empty(rig.world.topology);  // nothing fed, nothing mature
  ShadowTrainer trainer(rig.world.topology, *rig.slot, empty,
                        rig.PermissiveGates());
  const RoundResult round = trainer.RunOnce();
  EXPECT_EQ(round.round, 1u);
  EXPECT_FALSE(round.trained);
  EXPECT_FALSE(round.promoted);
  EXPECT_EQ(round.skip_reason, "train set below min_train_outcomes");
  EXPECT_EQ(rig.slot->version(), 1u);
  EXPECT_NE(trainer.StatusPage().find("skipped"), std::string::npos);
}

TEST(LearnTrainer, PromotesUnderPermissiveGates) {
  Rig rig;
  obs::MetricRegistry registry;
  ShadowTrainer trainer(rig.world.topology, *rig.slot, *rig.collector,
                        rig.PermissiveGates());
  trainer.AttachMetrics(registry);

  const RoundResult round = trainer.RunOnce();
  ASSERT_TRUE(round.trained) << round.skip_reason;
  ASSERT_TRUE(round.promoted) << round.skip_reason;
  EXPECT_GT(round.train_outcomes, 0u);
  EXPECT_GT(round.holdout_outcomes, 0u);
  EXPECT_EQ(round.published_version, 2u);
  EXPECT_EQ(rig.slot->version(), 2u);

  // Promotion replaces only the classifier; the predictors are shared from
  // the champion generation.
  const auto current = rig.slot->Acquire();
  EXPECT_NE(current->classifier.get(), rig.champion.get());
  EXPECT_EQ(current->single.get(), &rig.world.single_pred);

  const obs::RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(obs::SumCounterSamples(snap, "cordial_learn_rounds_total"), 1u);
  EXPECT_EQ(obs::SumCounterSamples(snap, "cordial_learn_promotions_total"),
            1u);
  EXPECT_GT(obs::SumCounterSamples(
                snap, "cordial_learn_outcomes_harvested_total"),
            0u);
  EXPECT_EQ(obs::SumGaugeSamples(snap, "cordial_learn_model_version"), 2);

  const std::string page = trainer.StatusPage();
  EXPECT_NE(page.find("PROMOTED as generation 2"), std::string::npos);
  EXPECT_NE(page.find("challenger"), std::string::npos);
}

TEST(LearnTrainer, RefusesChallengerBelowIcrFloor) {
  Rig rig;
  TrainerConfig tc = rig.PermissiveGates();
  tc.promotion_min_icr = 1.5;  // unreachable: ICR is a ratio in [0, 1]
  ShadowTrainer trainer(rig.world.topology, *rig.slot, *rig.collector, tc);
  const RoundResult round = trainer.RunOnce();
  EXPECT_TRUE(round.trained);
  EXPECT_FALSE(round.promoted);
  EXPECT_EQ(round.skip_reason, "challenger below promotion_min_icr");
  EXPECT_EQ(rig.slot->version(), 1u);
}

TEST(LearnTrainer, ForceSwapRepublishesTheSameBits) {
  Rig rig;
  ShadowTrainer trainer(rig.world.topology, *rig.slot, *rig.collector,
                        rig.PermissiveGates());
  const auto before = rig.slot->Acquire();
  EXPECT_EQ(trainer.ForceSwap(), 2u);
  const auto after = rig.slot->Acquire();
  EXPECT_EQ(after->version, 2u);
  EXPECT_EQ(after->classifier.get(), before->classifier.get());
  EXPECT_EQ(after->single.get(), before->single.get());
}

TEST(LearnTrainer, ForceRollbackTogglesGenerations) {
  Rig rig;
  ShadowTrainer trainer(rig.world.topology, *rig.slot, *rig.collector,
                        rig.PermissiveGates());
  EXPECT_EQ(trainer.ForceRollback(), 0u);  // nothing published yet

  const RoundResult round = trainer.RunOnce();
  ASSERT_TRUE(round.promoted) << round.skip_reason;
  const auto challenger = rig.slot->Acquire()->classifier;

  // Roll back to the boot champion, then forward to the challenger again.
  EXPECT_EQ(trainer.ForceRollback(), 3u);
  EXPECT_EQ(rig.slot->Acquire()->classifier.get(), rig.champion.get());
  EXPECT_EQ(trainer.ForceRollback(), 4u);
  EXPECT_EQ(rig.slot->Acquire()->classifier.get(), challenger.get());
}

TEST(LearnTrainer, ChallengerIsReproducibleFromSeed) {
  Rig rig_a;
  Rig rig_b;
  ShadowTrainer trainer_a(rig_a.world.topology, *rig_a.slot, *rig_a.collector,
                          rig_a.PermissiveGates());
  ShadowTrainer trainer_b(rig_b.world.topology, *rig_b.slot, *rig_b.collector,
                          rig_b.PermissiveGates());
  ASSERT_TRUE(trainer_a.RunOnce().promoted);
  ASSERT_TRUE(trainer_b.RunOnce().promoted);
  std::ostringstream model_a, model_b;
  rig_a.slot->Acquire()->classifier->SaveModel(model_a);
  rig_b.slot->Acquire()->classifier->SaveModel(model_b);
  EXPECT_EQ(model_a.str(), model_b.str());
}

TEST(LearnTrainer, BackgroundLoopRunsRounds) {
  Rig rig;
  TrainerConfig tc = rig.PermissiveGates();
  tc.refresh_every_s = 0.01;
  ShadowTrainer trainer(rig.world.topology, *rig.slot, *rig.collector, tc);
  trainer.Start();
  while (trainer.LastRound().round == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  trainer.Stop();
  EXPECT_GE(trainer.LastRound().round, 1u);
}

}  // namespace
}  // namespace cordial::learn
