// Shared serving-layer test fixture: a small generated fleet plus models
// trained on it, built once per test binary. The same World that
// tests/serve/fleet_server_test.cpp builds inline — extracted here for the
// migration and network-ingest suites, which need identical models so their
// multi-server runs can be compared bit-for-bit against single-server ones.
#pragma once

#include <vector>

#include "analysis/labeler.hpp"
#include "common/check.hpp"
#include "hbm/address.hpp"
#include "serve/fleet_server.hpp"
#include "trace/fleet.hpp"

namespace cordial::serve::test_support {

/// Small fleet plus models trained on it, built once and shared read-only.
struct World {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;

  World()
      : fleet([] {
          hbm::TopologyConfig topology;
          trace::CalibrationProfile profile;
          profile.scale = 0.08;
          return trace::FleetGenerator(topology, profile).Generate(5);
        }()),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    const auto banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    Rng rng(99);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
  }

  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }
};

inline const World& SharedWorld() {
  static const World* world = new World();
  return *world;
}

}  // namespace cordial::serve::test_support
