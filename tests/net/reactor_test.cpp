#include "net/reactor.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace cordial::net {
namespace {

using namespace std::chrono_literals;

/// Runs the reactor on a background thread for a test's lifetime.
class LoopFixture {
 public:
  LoopFixture() : thread_([this] { reactor_.Run(); }) {
    // Wait until the loop is actually polling before tests poke it.
    while (!reactor_.running()) std::this_thread::yield();
  }
  ~LoopFixture() {
    reactor_.Stop();
    thread_.join();
  }
  Reactor& reactor() { return reactor_; }

 private:
  Reactor reactor_;
  std::thread thread_;
};

/// Spin-wait for a cross-thread flag with a generous deadline.
template <typename Pred>
bool WaitFor(Pred pred, std::chrono::milliseconds deadline = 5000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(NetReactor, RunsPostedTasksFromOtherThreads) {
  LoopFixture loop;
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    loop.reactor().Post([&ran] { ran.fetch_add(1); });
  }
  EXPECT_TRUE(WaitFor([&] { return ran.load() == 10; }));
}

TEST(NetReactor, StopMakesRunReturnAndRunRestarts) {
  Reactor reactor;
  std::thread t([&] { reactor.Run(); });
  while (!reactor.running()) std::this_thread::yield();
  reactor.Stop();
  t.join();
  EXPECT_FALSE(reactor.running());

  // The same reactor can run again after a clean stop.
  std::thread t2([&] { reactor.Run(); });
  while (!reactor.running()) std::this_thread::yield();
  std::atomic<bool> ran{false};
  reactor.Post([&ran] { ran.store(true); });
  EXPECT_TRUE(WaitFor([&] { return ran.load(); }));
  reactor.Stop();
  t2.join();
}

TEST(NetReactor, ReadableCallbackFiresAndSeesBytes) {
  LoopFixture loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(SetNonBlocking(fds[0]));

  std::atomic<int> bytes_seen{0};
  loop.reactor().Post([&] {
    loop.reactor().Add(fds[0], kReadable, [&](std::uint32_t events) {
      EXPECT_TRUE(events & kReadable);
      char buf[16];
      ssize_t n;
      while ((n = ::read(fds[0], buf, sizeof buf)) > 0) {
        bytes_seen.fetch_add(static_cast<int>(n));
      }
    });
  });
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  EXPECT_TRUE(WaitFor([&] { return bytes_seen.load() == 3; }));
  ASSERT_EQ(::write(fds[1], "de", 2), 2);
  EXPECT_TRUE(WaitFor([&] { return bytes_seen.load() == 5; }));

  loop.reactor().Post([&] { loop.reactor().Remove(fds[0]); });
  std::atomic<bool> removed{false};
  loop.reactor().Post([&] {
    removed.store(loop.reactor().fd_count() == 0);
  });
  EXPECT_TRUE(WaitFor([&] { return removed.load(); }));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(NetReactor, CallbackMayRemoveItsOwnFd) {
  LoopFixture loop;
  int a[2], b[2];
  ASSERT_EQ(::pipe(a), 0);
  ASSERT_EQ(::pipe(b), 0);
  SetNonBlocking(a[0]);
  SetNonBlocking(b[0]);

  std::atomic<int> a_fires{0};
  std::atomic<int> b_fires{0};
  loop.reactor().Post([&] {
    // Both fds are ready in the same poll round; each callback removes its
    // own registration — the loop must tolerate that mid-dispatch.
    loop.reactor().Add(a[0], kReadable, [&](std::uint32_t) {
      a_fires.fetch_add(1);
      loop.reactor().Remove(a[0]);
    });
    loop.reactor().Add(b[0], kReadable, [&](std::uint32_t) {
      b_fires.fetch_add(1);
      loop.reactor().Remove(b[0]);
    });
  });
  ASSERT_EQ(::write(a[1], "x", 1), 1);
  ASSERT_EQ(::write(b[1], "x", 1), 1);
  EXPECT_TRUE(
      WaitFor([&] { return a_fires.load() == 1 && b_fires.load() == 1; }));

  // Neither fires again: both registrations are gone even though the pipes
  // still hold unread bytes.
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(a_fires.load(), 1);
  EXPECT_EQ(b_fires.load(), 1);
  ::close(a[0]);
  ::close(a[1]);
  ::close(b[0]);
  ::close(b[1]);
}

TEST(NetReactor, TimerFiresOnceAfterDelay) {
  LoopFixture loop;
  std::atomic<int> fired{0};
  const auto start = std::chrono::steady_clock::now();
  std::atomic<std::int64_t> elapsed_ms{-1};
  loop.reactor().Post([&] {
    loop.reactor().AddTimer(40ms, [&] {
      elapsed_ms.store(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count());
      fired.fetch_add(1);
    });
  });
  EXPECT_TRUE(WaitFor([&] { return fired.load() == 1; }));
  // Never early (the wheel rounds delays up); lateness is scheduler noise.
  EXPECT_GE(elapsed_ms.load(), 30);
  std::this_thread::sleep_for(80ms);
  EXPECT_EQ(fired.load(), 1) << "one-shot timer fired twice";
}

TEST(NetReactor, CancelledTimerNeverFires) {
  LoopFixture loop;
  std::atomic<bool> fired{false};
  std::atomic<bool> cancelled{false};
  loop.reactor().Post([&] {
    const Reactor::TimerId id =
        loop.reactor().AddTimer(50ms, [&] { fired.store(true); });
    loop.reactor().CancelTimer(id);
    cancelled.store(true);
  });
  EXPECT_TRUE(WaitFor([&] { return cancelled.load(); }));
  std::this_thread::sleep_for(120ms);
  EXPECT_FALSE(fired.load());
}

TEST(NetReactor, TimerCallbackMayReArm) {
  LoopFixture loop;
  std::atomic<int> ticks{0};
  // A self-re-arming 10ms timer: the periodic pattern every idle timeout
  // uses. Stop after five firings.
  std::function<void()> tick = [&] {
    if (ticks.fetch_add(1) + 1 < 5) loop.reactor().AddTimer(10ms, tick);
  };
  loop.reactor().Post([&] { loop.reactor().AddTimer(10ms, tick); });
  EXPECT_TRUE(WaitFor([&] { return ticks.load() == 5; }));
}

TEST(NetReactor, FarTimerDoesNotFireWhenNearSlotsSweep) {
  LoopFixture loop;
  std::atomic<bool> far_fired{false};
  std::atomic<int> near_fired{0};
  loop.reactor().Post([&] {
    // Past one full wheel revolution (512 slots x 10ms), so it carries a
    // non-zero round count; sweeping its slot must decrement, not fire.
    loop.reactor().AddTimer(
        std::chrono::milliseconds(Reactor::kWheelSlots * Reactor::kTickMillis +
                                  20),
        [&] { far_fired.store(true); });
    loop.reactor().AddTimer(30ms, [&] { near_fired.fetch_add(1); });
  });
  EXPECT_TRUE(WaitFor([&] { return near_fired.load() == 1; }));
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(far_fired.load());
}

TEST(NetReactor, ManyTimersAllFire) {
  LoopFixture loop;
  constexpr int kTimers = 200;
  std::atomic<int> fired{0};
  loop.reactor().Post([&] {
    for (int i = 0; i < kTimers; ++i) {
      loop.reactor().AddTimer(std::chrono::milliseconds(1 + i % 60),
                              [&] { fired.fetch_add(1); });
    }
  });
  EXPECT_TRUE(WaitFor([&] { return fired.load() == kTimers; }));
}

}  // namespace
}  // namespace cordial::net
