// End-to-end TCP ingest: frames over a real socket into a FleetServer must
// produce exactly the state an in-process SubmitBatch feed produces, the
// reply protocol must track sequences and overload, and hostile peers
// (slow-loris trickles, garbage frames) must be cut off and counted.
#include "net/ingest_server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/check.hpp"
#include "net/ingest_client.hpp"
#include "obs/metrics.hpp"
#include "support/serve_world.hpp"

namespace cordial::net {
namespace {

using namespace std::chrono_literals;
using serve::test_support::SharedWorld;
using serve::test_support::World;

std::unique_ptr<serve::FleetServer> MakeFleet(const World& w,
                                              std::size_t shards = 2) {
  serve::FleetServerConfig config;
  config.shard_count = shards;
  return std::make_unique<serve::FleetServer>(
      w.topology, w.classifier, w.single_pred, w.double_or_null(), config);
}

/// Raw blocking TCP connection for tests that speak bytes, not messages.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    CORDIAL_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    CORDIAL_CHECK_MSG(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                sizeof addr) == 0,
                      "test connect failed");
  }
  ~RawConn() { ::close(fd_); }

  void Send(std::string_view bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Block for up to 5s until some reply bytes arrive; returns them.
  std::string RecvSome() {
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    return n > 0 ? std::string(buf, static_cast<std::size_t>(n))
                 : std::string();
  }

  /// Block until the peer closes (returns true) or `deadline` passes.
  bool WaitForClose(std::chrono::milliseconds deadline) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(deadline.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((deadline.count() % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    char buf[256];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) return true;   // orderly close
      if (n < 0) return errno == ECONNRESET;  // reset also counts as closed
    }
  }

 private:
  int fd_ = -1;
};

std::uint64_t CounterValue(const IngestServer& server, std::string_view name) {
  const obs::RegistrySnapshot snap = server.MetricsSnapshot();
  return obs::SumCounterSamples(snap, name);
}

TEST(NetIngest, HandshakeBatchesAndRunningTotals) {
  const World& w = SharedWorld();
  auto fleet = MakeFleet(w);
  fleet->Start();
  IngestServer server(*fleet);
  server.Start();

  IngestClient client;
  client.Connect("127.0.0.1", server.port());
  EXPECT_EQ(client.next_sequence(), 1u);

  const auto& records = w.fleet.log.records();
  const std::size_t batch_size = 100;
  std::uint64_t sent = 0;
  std::uint64_t batches = 0;
  for (std::size_t off = 0; off < records.size() && sent < 500;
       off += batch_size) {
    const std::size_t n = std::min(batch_size, records.size() - off);
    const Message reply =
        client.SendBatch(std::span(records).subspan(off, n));
    sent += n;
    ++batches;
    const Ack& ack = std::get<Ack>(reply);
    EXPECT_EQ(ack.sequence, batches);
    EXPECT_EQ(ack.accepted_records, sent);
  }
  EXPECT_EQ(client.next_sequence(), batches + 1);

  fleet->Drain();
  EXPECT_EQ(fleet->AggregateCounters().submitted, sent);
  EXPECT_EQ(CounterValue(server, "cordial_net_records_total"), sent);
  EXPECT_GE(CounterValue(server, "cordial_net_frames_total"),
            sent / batch_size);
  EXPECT_EQ(CounterValue(server, "cordial_net_protocol_errors_total"), 0u);

  client.Close();
  server.Stop();
  fleet->Stop();
}

TEST(NetIngest, TcpFeedMatchesInProcessFeedBitExactly) {
  const World& w = SharedWorld();

  // In-process reference: the same records through SubmitBatch directly.
  auto reference = MakeFleet(w);
  reference->Start();
  reference->SubmitBatch(w.fleet.log.records());
  reference->Stop();

  auto fleet = MakeFleet(w);
  fleet->Start();
  IngestServer server(*fleet);
  server.Start();
  {
    IngestClient client;
    client.Connect("127.0.0.1", server.port());
    const auto& records = w.fleet.log.records();
    for (std::size_t off = 0; off < records.size(); off += 500) {
      const std::size_t n = std::min<std::size_t>(500, records.size() - off);
      client.SendBatch(std::span(records).subspan(off, n));
    }
  }
  server.Stop();
  fleet->Stop();

  EXPECT_EQ(fleet->AggregateStats(), reference->AggregateStats());
  for (std::size_t s = 0; s < fleet->shard_count(); ++s) {
    EXPECT_EQ(fleet->ExportShard(s), reference->ExportShard(s))
        << "shard " << s;
  }
}

TEST(NetIngest, BadSequenceIsRejectedAndConnectionCloses) {
  const World& w = SharedWorld();
  auto fleet = MakeFleet(w);
  fleet->Start();
  IngestServer server(*fleet);
  server.Start();

  IngestClient client;
  client.Connect("127.0.0.1", server.port());
  Batch batch;
  batch.sequence = 7;  // first batch must be 1
  const Message reply = client.Call(batch);
  const Reject& reject = std::get<Reject>(reply);
  EXPECT_EQ(reject.reason, RejectReason::kBadSequence);
  EXPECT_EQ(reject.accepted_records, 0u);
  // The server closes after flushing the reject; the next call fails.
  EXPECT_THROW(client.Call(Hello{}), ParseError);
  EXPECT_EQ(CounterValue(server, "cordial_net_protocol_errors_total"), 1u);

  server.Stop();
  fleet->Stop();
}

TEST(NetIngest, OverloadedFleetYieldsBackpressureReject) {
  const World& w = SharedWorld();
  serve::FleetServerConfig config;
  config.shard_count = 1;
  config.queue.capacity = 8;
  config.queue.policy = serve::OverloadPolicy::kReject;
  serve::FleetServer fleet(w.topology, w.classifier, w.single_pred,
                           w.double_or_null(), config);
  // Deliberately not started: the queue fills deterministically at 8.
  IngestServer server(fleet);
  server.Start();

  IngestClient client;
  client.Connect("127.0.0.1", server.port());
  const auto records =
      std::span(w.fleet.log.records()).subspan(0, 20);
  const Message reply = client.SendBatch(records);
  const Reject& reject = std::get<Reject>(reply);
  EXPECT_EQ(reject.reason, RejectReason::kBackpressure);
  EXPECT_EQ(reject.accepted_records, 8u);
  EXPECT_EQ(client.next_sequence(), 2u);  // the batch was consumed
  EXPECT_EQ(CounterValue(server, "cordial_net_batches_rejected_total"), 1u);

  server.Stop();
  fleet.Start();
  fleet.Stop();
}

TEST(NetIngest, SlowLorisConnectionIsClosedAndCounted) {
  const World& w = SharedWorld();
  auto fleet = MakeFleet(w);
  fleet->Start();
  IngestServerConfig config;
  config.idle_timeout = 80ms;
  IngestServer server(*fleet, config);
  server.Start();

  RawConn loris(server.port());
  // A frame prefix, then silence: the peer never completes the header.
  loris.Send("cordial_net v1 ");
  EXPECT_TRUE(loris.WaitForClose(5000ms));
  EXPECT_EQ(CounterValue(server, "cordial_net_idle_closed_total"), 1u);

  // A live connection trickling bytes faster than the timeout stays open
  // long enough to complete its frame — every byte re-arms the timer, so
  // the server still answers with an Ack.
  const std::string frame = EncodeFrame(Batch{1, {}});
  RawConn trickle(server.port());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    trickle.Send(std::string_view(frame).substr(i, 1));
    std::this_thread::sleep_for(2ms);
  }
  const std::string reply = trickle.RecvSome();
  EXPECT_EQ(reply.rfind("cordial_net v1 ", 0), 0u) << reply;
  EXPECT_EQ(CounterValue(server, "cordial_net_idle_closed_total"), 1u);

  server.Stop();
  fleet->Stop();
}

TEST(NetIngest, GarbageBytesCloseTheConnection) {
  const World& w = SharedWorld();
  auto fleet = MakeFleet(w);
  fleet->Start();
  IngestServer server(*fleet);
  server.Start();

  RawConn garbage(server.port());
  garbage.Send("GET /metrics HTTP/1.1\r\n\r\n");  // wrong plane entirely
  EXPECT_TRUE(garbage.WaitForClose(5000ms));
  EXPECT_EQ(CounterValue(server, "cordial_net_protocol_errors_total"), 1u);

  server.Stop();
  fleet->Stop();
}

TEST(NetIngest, ShardMigratesBetweenServersOverTheWire) {
  const World& w = SharedWorld();
  auto fleet_a = MakeFleet(w);
  auto fleet_b = MakeFleet(w);
  fleet_a->Start();
  fleet_b->Start();
  IngestServer server_a(*fleet_a);
  IngestServer server_b(*fleet_b);
  server_a.Start();
  server_b.Start();

  IngestClient to_a, to_b;
  to_a.Connect("127.0.0.1", server_a.port());
  to_b.Connect("127.0.0.1", server_b.port());

  // Feed everything to A, then move shard 1's state to B over the wire.
  const auto& records = w.fleet.log.records();
  for (std::size_t off = 0; off < records.size(); off += 500) {
    const std::size_t n = std::min<std::size_t>(500, records.size() - off);
    to_a.SendBatch(std::span(records).subspan(off, n));
  }
  const std::string state = to_a.FetchShard(1);
  to_b.DeliverShard(1, state);

  // B's shard 1 now re-exports byte-identically; its other shard is
  // untouched.
  EXPECT_EQ(to_b.FetchShard(1), state);
  EXPECT_EQ(fleet_b->shard(0).engine().stats().events, 0u);

  server_a.Stop();
  server_b.Stop();
  fleet_a->Stop();
  fleet_b->Stop();
}

TEST(NetIngest, ConnectionCapRefusesExtraPeers) {
  const World& w = SharedWorld();
  auto fleet = MakeFleet(w);
  fleet->Start();
  IngestServerConfig config;
  config.max_connections = 1;
  IngestServer server(*fleet, config);
  server.Start();

  IngestClient first;
  first.Connect("127.0.0.1", server.port());
  RawConn second(server.port());
  EXPECT_TRUE(second.WaitForClose(5000ms));
  EXPECT_EQ(CounterValue(server, "cordial_net_connections_refused_total"),
            1u);
  // The first connection still works.
  first.SendBatch(std::span<const trace::MceRecord>{});

  server.Stop();
  fleet->Stop();
}

}  // namespace
}  // namespace cordial::net
