#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "common/check.hpp"
#include "trace/log_codec.hpp"

namespace cordial::net {
namespace {

trace::MceRecord SampleRecord(double t, std::uint32_t row) {
  trace::MceRecord r;
  r.time_s = t;
  r.address = {1, 2, 3, 1, 2, 1, 3, 2, row, 101};
  r.type = hbm::ErrorType::kUeo;
  return r;
}

/// Encode, run through an assembler, decode — the full wire path.
Message RoundTrip(const Message& message) {
  FrameAssembler assembler;
  assembler.Append(EncodeFrame(message));
  std::string payload;
  EXPECT_TRUE(assembler.Next(payload));
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  return DecodeMessage(payload);
}

TEST(NetWire, RoundTripsEveryMessageType) {
  {
    const auto m = std::get<Hello>(RoundTrip(Hello{7}));
    EXPECT_EQ(m.protocol_version, 7u);
  }
  {
    Batch batch;
    batch.sequence = 42;
    batch.records = {SampleRecord(1.5, 10), SampleRecord(2.5, 11)};
    const auto m = std::get<Batch>(RoundTrip(batch));
    EXPECT_EQ(m.sequence, 42u);
    ASSERT_EQ(m.records.size(), 2u);
    EXPECT_EQ(m.records[0], batch.records[0]);
    EXPECT_EQ(m.records[1], batch.records[1]);
  }
  {
    const auto m = std::get<Ack>(RoundTrip(Ack{9, 1234}));
    EXPECT_EQ(m.sequence, 9u);
    EXPECT_EQ(m.accepted_records, 1234u);
  }
  {
    const auto m = std::get<Reject>(
        RoundTrip(Reject{3, RejectReason::kBackpressure, 55}));
    EXPECT_EQ(m.sequence, 3u);
    EXPECT_EQ(m.reason, RejectReason::kBackpressure);
    EXPECT_EQ(m.accepted_records, 55u);
  }
  {
    const auto m = std::get<ExportShard>(RoundTrip(ExportShard{6}));
    EXPECT_EQ(m.shard, 6u);
  }
  {
    const std::string state("framed\0bytes\n", 13);  // embedded NUL survives
    const auto m = std::get<ShardState>(RoundTrip(ShardState{2, state}));
    EXPECT_EQ(m.shard, 2u);
    EXPECT_EQ(m.state, state);
  }
  {
    const auto m =
        std::get<ImportShard>(RoundTrip(ImportShard{1, std::string(1000, 'x')}));
    EXPECT_EQ(m.shard, 1u);
    EXPECT_EQ(m.state.size(), 1000u);
  }
  {
    const auto m = std::get<Imported>(RoundTrip(Imported{4}));
    EXPECT_EQ(m.shard, 4u);
  }
}

TEST(NetWire, EmptyBatchRoundTrips) {
  const auto m = std::get<Batch>(RoundTrip(Batch{1, {}}));
  EXPECT_EQ(m.sequence, 1u);
  EXPECT_TRUE(m.records.empty());
}

TEST(NetWire, AssemblerReassemblesByteByByte) {
  Batch batch;
  batch.sequence = 5;
  batch.records = {SampleRecord(0.5, 1)};
  const std::string frame = EncodeFrame(batch);

  FrameAssembler assembler;
  std::string payload;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    assembler.Append(std::string_view(frame).substr(i, 1));
    EXPECT_FALSE(assembler.Next(payload)) << "complete at byte " << i;
  }
  assembler.Append(std::string_view(frame).substr(frame.size() - 1));
  ASSERT_TRUE(assembler.Next(payload));
  EXPECT_EQ(std::get<Batch>(DecodeMessage(payload)).sequence, 5u);
}

TEST(NetWire, AssemblerYieldsMultipleFramesFromOneAppend) {
  std::string stream;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    stream += EncodeFrame(Ack{seq, seq * 10});
  }
  FrameAssembler assembler;
  assembler.Append(stream);
  std::string payload;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(assembler.Next(payload));
    EXPECT_EQ(std::get<Ack>(DecodeMessage(payload)).sequence, seq);
  }
  EXPECT_FALSE(assembler.Next(payload));
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(NetWire, CorruptPayloadFailsChecksum) {
  std::string frame = EncodeFrame(Ack{1, 2});
  frame[frame.size() - 3] ^= 0x20;  // flip a payload bit
  FrameAssembler assembler;
  assembler.Append(frame);
  std::string payload;
  EXPECT_THROW(assembler.Next(payload), ParseError);
}

TEST(NetWire, WrongMagicRejected) {
  FrameAssembler assembler;
  assembler.Append("cordial_fleet_checkpoint v1 3 crc32=deadbeef\nabc");
  std::string payload;
  EXPECT_THROW(assembler.Next(payload), ParseError);
}

TEST(NetWire, WrongVersionRejected) {
  FrameAssembler assembler;
  assembler.Append("cordial_net v9 3 crc32=deadbeef\nabc");
  std::string payload;
  EXPECT_THROW(assembler.Next(payload), ParseError);
}

TEST(NetWire, ChecksumlessFrameRejected) {
  // Files grandfather layout-v1 frames; the wire never does.
  FrameAssembler assembler;
  assembler.Append("cordial_net v1 3\nabc");
  std::string payload;
  EXPECT_THROW(assembler.Next(payload), ParseError);
}

TEST(NetWire, UnterminatedHeaderRejectedAtCap) {
  FrameAssembler assembler;
  assembler.Append(std::string(300, 'a'));  // no newline, over the cap
  std::string payload;
  EXPECT_THROW(assembler.Next(payload), ParseError);
}

TEST(NetWire, OversizedPayloadRejectedBeforeArrival) {
  FrameAssembler assembler(1024);
  assembler.Append("cordial_net v1 4096 crc32=deadbeef\n");
  std::string payload;
  EXPECT_THROW(assembler.Next(payload), ParseError);
}

TEST(NetWire, UnknownTypeByteRejected) {
  std::string payload(1, '\x63');
  EXPECT_THROW(DecodeMessage(payload), ParseError);
}

TEST(NetWire, TruncatedPayloadRejected) {
  const std::string frame = EncodeFrame(Ack{1, 2});
  // Strip the header and cut the payload short.
  const std::string payload = frame.substr(frame.find('\n') + 1);
  EXPECT_THROW(DecodeMessage(payload.substr(0, payload.size() - 1)),
               ParseError);
}

TEST(NetWire, TrailingBytesRejected) {
  const std::string frame = EncodeFrame(Imported{1});
  std::string payload = frame.substr(frame.find('\n') + 1);
  payload.push_back('x');
  EXPECT_THROW(DecodeMessage(payload), ParseError);
}

TEST(NetWire, BatchCountMismatchRejected) {
  Batch batch;
  batch.sequence = 1;
  batch.records = {SampleRecord(1.0, 1)};
  const std::string frame = EncodeFrame(batch);
  std::string payload = frame.substr(frame.find('\n') + 1);
  payload.resize(payload.size() - 1);  // count says 1 record, bytes say less
  EXPECT_THROW(DecodeMessage(payload), ParseError);
}

TEST(NetWire, UnknownRejectReasonRejected) {
  const std::string frame = EncodeFrame(Reject{1, RejectReason::kMalformed, 0});
  std::string payload = frame.substr(frame.find('\n') + 1);
  payload[1 + 8] = '\x07';  // reason byte sits after type + sequence
  EXPECT_THROW(DecodeMessage(payload), ParseError);
}

}  // namespace
}  // namespace cordial::net
