#include "core/crossrow.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"

namespace cordial::core {
namespace {

using hbm::ErrorType;

trace::MceRecord Make(double t, std::uint32_t row, ErrorType type) {
  trace::MceRecord r;
  r.time_s = t;
  r.address.row = row;
  r.type = type;
  return r;
}

trace::BankHistory MakeBank(std::vector<trace::MceRecord> events,
                            std::uint64_t key = 0) {
  trace::BankHistory bank;
  bank.bank_key = key;
  std::sort(events.begin(), events.end());
  bank.events = std::move(events);
  return bank;
}

class CrossRowTest : public ::testing::Test {
 protected:
  hbm::TopologyConfig topology_;
  CrossRowPredictor predictor_{topology_, ml::LearnerKind::kRandomForest};
};

TEST_F(CrossRowTest, AnchorsStartAtTriggerOrdinal) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 110, ErrorType::kUer),
      Make(3, 120, ErrorType::kUer),
      Make(4, 130, ErrorType::kUer),
  });
  const auto anchors = predictor_.AnchorsOf(bank);
  ASSERT_EQ(anchors.size(), 2u);
  EXPECT_EQ(anchors[0].row, 120u);
  EXPECT_EQ(anchors[0].uer_ordinal, 3u);
  EXPECT_EQ(anchors[1].row, 130u);
}

TEST_F(CrossRowTest, AnchorsSkipConsecutiveRepeatRows) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 110, ErrorType::kUer),
      Make(3, 120, ErrorType::kUer),
      Make(4, 120, ErrorType::kUer),  // repeat of current anchor row
      Make(5, 140, ErrorType::kUer),
  });
  const auto anchors = predictor_.AnchorsOf(bank);
  ASSERT_EQ(anchors.size(), 2u);
  EXPECT_EQ(anchors[0].row, 120u);
  EXPECT_EQ(anchors[1].row, 140u);
}

TEST_F(CrossRowTest, AnchorsRespectCap) {
  std::vector<trace::MceRecord> events;
  for (int i = 0; i < 30; ++i) {
    events.push_back(Make(i, static_cast<std::uint32_t>(1000 + i * 16),
                          ErrorType::kUer));
  }
  const auto anchors = predictor_.AnchorsOf(MakeBank(std::move(events)));
  EXPECT_EQ(anchors.size(), predictor_.config().max_anchors_per_bank);
}

TEST_F(CrossRowTest, BanksBelowTriggerHaveNoAnchors) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 110, ErrorType::kUer),
  });
  EXPECT_TRUE(predictor_.AnchorsOf(bank).empty());
}

TEST_F(CrossRowTest, FirstFailuresAreDistinctRowsInTimeOrder) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 200, ErrorType::kUer),
      Make(3, 100, ErrorType::kUer),  // repeat
      Make(4, 300, ErrorType::kUer),
      Make(5, 50, ErrorType::kCe),
  });
  const auto firsts = CrossRowPredictor::FirstFailures(bank);
  ASSERT_EQ(firsts.size(), 3u);
  EXPECT_EQ(firsts[0], (std::pair<std::uint32_t, double>{100, 1.0}));
  EXPECT_EQ(firsts[1], (std::pair<std::uint32_t, double>{200, 2.0}));
  EXPECT_EQ(firsts[2], (std::pair<std::uint32_t, double>{300, 4.0}));
}

TEST_F(CrossRowTest, BlockTruthMarksOnlyFutureFirstFailures) {
  const auto bank = MakeBank({
      Make(1, 1000, ErrorType::kUer),
      Make(2, 1010, ErrorType::kUer),
      Make(3, 1020, ErrorType::kUer),
      Make(4, 1030, ErrorType::kUer),  // future, within window of 1020
      Make(5, 1010, ErrorType::kUer),  // repeat: NOT a future first failure
      Make(6, 20000, ErrorType::kUer),  // far outside the window
  });
  const Anchor anchor{3.0, 1020, 3};
  const auto truth = predictor_.BlockTruth(bank, anchor);
  const BlockWindow window = predictor_.extractor().WindowAt(1020);
  int positives = 0;
  for (std::size_t b = 0; b < truth.size(); ++b) positives += truth[b];
  EXPECT_EQ(positives, 1);
  const auto block_of_1030 = window.BlockOf(1030);
  ASSERT_TRUE(block_of_1030.has_value());
  EXPECT_EQ(truth[*block_of_1030], 1);
}

TEST_F(CrossRowTest, BuildDatasetOneRowPerInBankBlock) {
  const auto bank = MakeBank({
      Make(1, 1000, ErrorType::kUer),
      Make(2, 1016, ErrorType::kUer),
      Make(3, 1032, ErrorType::kUer),
  });
  const ml::Dataset data = predictor_.BuildDataset({&bank});
  // One anchor (3rd UER), all 16 blocks inside the bank.
  EXPECT_EQ(data.size(), 16u);
  EXPECT_EQ(data.num_features(), predictor_.extractor().num_features());
}

TEST_F(CrossRowTest, BuildDatasetSkipsOutOfBankBlocks) {
  const auto bank = MakeBank({
      Make(1, 4, ErrorType::kUer),
      Make(2, 8, ErrorType::kUer),
      Make(3, 12, ErrorType::kUer),  // anchor near row 0: window clipped
  });
  const ml::Dataset data = predictor_.BuildDataset({&bank});
  EXPECT_LT(data.size(), 16u);
  EXPECT_GT(data.size(), 4u);
}

TEST_F(CrossRowTest, TrainPredictEndToEnd) {
  // Synthesize banks with a strict pattern: rows at stride 32 ascending,
  // so the next row is always +32 from the anchor.
  std::vector<trace::BankHistory> banks;
  std::vector<const trace::BankHistory*> pointers;
  Rng rng(3);
  for (int b = 0; b < 60; ++b) {
    std::vector<trace::MceRecord> events;
    const auto base = static_cast<std::uint32_t>(2000 + rng.UniformU64(20000));
    for (int i = 0; i < 6; ++i) {
      events.push_back(Make(i * 100.0,
                            base + static_cast<std::uint32_t>(i) * 32,
                            ErrorType::kUer));
    }
    banks.push_back(MakeBank(std::move(events), static_cast<std::uint64_t>(b)));
  }
  for (const auto& bank : banks) pointers.push_back(&bank);

  CrossRowPredictor predictor(topology_, ml::LearnerKind::kRandomForest);
  Rng fit_rng(4);
  predictor.Train(pointers, fit_rng);
  EXPECT_TRUE(predictor.trained());

  // On a fresh bank with the same pattern, the +32 block must be hot.
  const auto probe = MakeBank({
      Make(1, 9000, ErrorType::kUer),
      Make(2, 9032, ErrorType::kUer),
      Make(3, 9064, ErrorType::kUer),
  });
  const Anchor anchor{3.0, 9064, 3};
  const auto proba = predictor.PredictBlockProba(probe, anchor);
  const BlockWindow window = predictor.extractor().WindowAt(9064);
  const auto hot_block = window.BlockOf(9096);  // anchor + 32
  ASSERT_TRUE(hot_block.has_value());
  const double hot = proba[*hot_block];
  // The +32 block must be among the strongest predictions.
  const double max_proba = *std::max_element(proba.begin(), proba.end());
  EXPECT_GT(hot, 0.5 * max_proba);
  EXPECT_GT(max_proba, 0.3);
}

TEST_F(CrossRowTest, PredictionsAreProbabilitiesAndThresholded) {
  std::vector<trace::BankHistory> banks;
  Rng rng(5);
  for (int b = 0; b < 20; ++b) {
    std::vector<trace::MceRecord> events;
    const auto base = static_cast<std::uint32_t>(2000 + rng.UniformU64(10000));
    for (int i = 0; i < 5; ++i) {
      events.push_back(Make(i, base + static_cast<std::uint32_t>(
                                          rng.UniformU64(64)),
                            ErrorType::kUer));
    }
    banks.push_back(MakeBank(std::move(events)));
  }
  std::vector<const trace::BankHistory*> pointers;
  for (const auto& bank : banks) pointers.push_back(&bank);
  CrossRowPredictor predictor(topology_, ml::LearnerKind::kLgbmStyle);
  Rng fit_rng(6);
  predictor.Train(pointers, fit_rng);

  const auto& probe = banks.front();
  const auto anchors = predictor.AnchorsOf(probe);
  ASSERT_FALSE(anchors.empty());
  const auto proba = predictor.PredictBlockProba(probe, anchors[0]);
  const auto votes = predictor.PredictBlocks(probe, anchors[0]);
  for (std::size_t b = 0; b < proba.size(); ++b) {
    EXPECT_GE(proba[b], 0.0);
    EXPECT_LE(proba[b], 1.0);
    EXPECT_EQ(votes[b],
              proba[b] >= predictor.config().positive_threshold ? 1 : 0);
  }
}

TEST_F(CrossRowTest, UntrainedPredictThrows) {
  const auto bank = MakeBank({Make(1, 100, ErrorType::kUer)});
  EXPECT_THROW(predictor_.PredictBlockProba(bank, Anchor{1.0, 100, 1}),
               ContractViolation);
}

TEST_F(CrossRowTest, TrainRejectsEmptyOrSingleClassData) {
  Rng empty_rng(1);
  EXPECT_THROW(predictor_.Train({}, empty_rng), ContractViolation);
  // A bank whose anchors have no future rows: all labels negative.
  const auto bank = MakeBank({
      Make(1, 1000, ErrorType::kUer),
      Make(2, 1016, ErrorType::kUer),
      Make(3, 1032, ErrorType::kUer),
  });
  Rng rng(2);
  CrossRowPredictor predictor(topology_, ml::LearnerKind::kRandomForest);
  EXPECT_THROW(predictor.Train({&bank}, rng), ContractViolation);
}

TEST_F(CrossRowTest, ConfigValidation) {
  CrossRowConfig bad;
  bad.trigger_uers = 0;
  EXPECT_THROW(
      CrossRowPredictor(topology_, ml::LearnerKind::kRandomForest, bad),
      ContractViolation);
  CrossRowConfig bad_threshold;
  bad_threshold.positive_threshold = 1.0;
  EXPECT_THROW(CrossRowPredictor(topology_, ml::LearnerKind::kRandomForest,
                                 bad_threshold),
               ContractViolation);
}

}  // namespace
}  // namespace cordial::core
