#include "core/inrow.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "hbm/address.hpp"
#include "trace/fleet.hpp"

namespace cordial::core {
namespace {

using hbm::ErrorType;

trace::MceRecord Make(double t, std::uint32_t row, ErrorType type) {
  trace::MceRecord r;
  r.time_s = t;
  r.address.row = row;
  r.type = type;
  return r;
}

trace::BankHistory MakeBank(std::vector<trace::MceRecord> events,
                            std::uint64_t key = 1) {
  trace::BankHistory bank;
  bank.bank_key = key;
  std::sort(events.begin(), events.end());
  bank.events = std::move(events);
  return bank;
}

class InRowTest : public ::testing::Test {
 protected:
  hbm::TopologyConfig topology_;
  InRowPredictor predictor_{topology_, ml::LearnerKind::kRandomForest};
};

TEST_F(InRowTest, ExtractHandComputed) {
  const auto bank = MakeBank({
      Make(10, 100, ErrorType::kCe),
      Make(30, 100, ErrorType::kCe),
      Make(50, 100, ErrorType::kUeo),
      Make(60, 200, ErrorType::kCe),   // other row
      Make(70, 120, ErrorType::kUer),  // nearby UER row
  });
  const auto f = predictor_.Extract(bank, 100, 80.0);
  const auto& names = predictor_.feature_names();
  auto value = [&](const char* name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return f[i];
    }
    throw std::runtime_error("missing feature");
  };
  EXPECT_DOUBLE_EQ(value("row_ce_count"), 2.0);
  EXPECT_DOUBLE_EQ(value("row_ueo_count"), 1.0);
  EXPECT_DOUBLE_EQ(value("row_error_count"), 3.0);
  EXPECT_DOUBLE_EQ(value("row_time_since_first_error"), 70.0);
  EXPECT_DOUBLE_EQ(value("row_time_since_last_error"), 30.0);
  EXPECT_DOUBLE_EQ(value("row_dt_min"), 20.0);
  EXPECT_DOUBLE_EQ(value("row_dt_max"), 20.0);
  EXPECT_DOUBLE_EQ(value("bank_ce_count"), 3.0);
  EXPECT_DOUBLE_EQ(value("bank_uer_count"), 1.0);
  EXPECT_DOUBLE_EQ(value("bank_uer_rows_nearby"), 1.0);
}

TEST_F(InRowTest, ExtractIgnoresTheFuture) {
  const auto bank = MakeBank({
      Make(10, 100, ErrorType::kCe),
      Make(90, 100, ErrorType::kCe),
  });
  const auto f = predictor_.Extract(bank, 100, 20.0);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // row_ce_count before t=20
}

TEST_F(InRowTest, ExtractNeedsAPrecursor) {
  const auto bank = MakeBank({Make(10, 100, ErrorType::kUer)});
  EXPECT_THROW(predictor_.Extract(bank, 100, 20.0), ContractViolation);
  EXPECT_THROW(predictor_.Extract(bank, 999, 20.0), ContractViolation);
}

TEST_F(InRowTest, DatasetLabelsFollowFutureFailure) {
  // Row 100: CE then UER (positive). Row 200: CE only (negative).
  // Row 300: UER then CE (precursor after failure: no sample).
  const auto bank = MakeBank({
      Make(10, 100, ErrorType::kCe),
      Make(50, 100, ErrorType::kUer),
      Make(20, 200, ErrorType::kCe),
      Make(5, 300, ErrorType::kUer),
      Make(30, 300, ErrorType::kCe),
  });
  const ml::Dataset data = predictor_.BuildDataset({&bank});
  EXPECT_EQ(data.size(), 2u);
  const auto counts = data.ClassCounts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
}

TEST_F(InRowTest, NegativeRowsAreDownsampled) {
  std::vector<trace::MceRecord> events;
  for (std::uint32_t row = 0; row < 50; ++row) {
    events.push_back(Make(row + 1.0, row * 10, ErrorType::kCe));
  }
  const auto bank = MakeBank(std::move(events));
  InRowConfig config;
  config.max_negative_rows_per_bank = 5;
  InRowPredictor predictor(topology_, ml::LearnerKind::kRandomForest, config);
  const ml::Dataset data = predictor.BuildDataset({&bank});
  EXPECT_EQ(data.size(), 5u);
}

TEST_F(InRowTest, LearnedStrategyCoversOnlyNonSuddenRows) {
  // Train on a fleet slice, then check the structural property: the
  // learned in-row strategy cannot beat the sudden-row ceiling by much.
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = 0.15;
  trace::FleetGenerator generator(topology, profile);
  const auto fleet = generator.Generate(21);
  hbm::AddressCodec codec(topology);
  const auto banks = fleet.log.GroupByBank(codec);

  std::vector<const trace::BankHistory*> train, test;
  for (std::size_t i = 0; i < banks.size(); ++i) {
    (i % 2 == 0 ? train : test).push_back(&banks[i]);
  }
  InRowPredictor predictor(topology, ml::LearnerKind::kRandomForest);
  Rng rng(3);
  predictor.Train(train, rng);

  LearnedInRowStrategy strategy(predictor);
  IcrEvaluator evaluator(topology);
  const IcrResult result = evaluator.Evaluate(test, strategy);
  EXPECT_GT(result.total_uer_rows, 100u);
  // The whole point: in-row prediction is capped by the ~4.4% non-sudden
  // ratio, no matter how good the model is.
  EXPECT_LT(result.Icr(), 0.10);
  // But a trained model does catch some of the non-sudden rows.
  EXPECT_GT(result.covered_rows, 0u);
}

TEST_F(InRowTest, UntrainedUseThrows) {
  const auto bank = MakeBank({Make(10, 100, ErrorType::kCe)});
  EXPECT_THROW(predictor_.PredictRowFailure(bank, 100, 20.0),
               ContractViolation);
  EXPECT_THROW(LearnedInRowStrategy{predictor_}, ContractViolation);
}

TEST_F(InRowTest, ConfigValidation) {
  InRowConfig bad;
  bad.positive_threshold = 0.0;
  EXPECT_THROW(InRowPredictor(topology_, ml::LearnerKind::kRandomForest, bad),
               ContractViolation);
  InRowConfig bad_obs;
  bad_obs.max_observations_per_row = 0;
  EXPECT_THROW(
      InRowPredictor(topology_, ml::LearnerKind::kRandomForest, bad_obs),
      ContractViolation);
}

}  // namespace
}  // namespace cordial::core
