// Train-offline / deploy-online persistence at the Cordial level.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/labeler.hpp"
#include "common/check.hpp"
#include "common/framing.hpp"
#include "core/crossrow.hpp"
#include "core/pattern_classifier.hpp"
#include "core/persist.hpp"
#include "hbm/address.hpp"
#include "trace/fleet.hpp"

namespace cordial::core {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  static const trace::GeneratedFleet& Fleet() {
    static const trace::GeneratedFleet fleet = [] {
      hbm::TopologyConfig topology;
      trace::CalibrationProfile profile;
      profile.scale = 0.1;
      trace::FleetGenerator generator(topology, profile);
      return generator.Generate(31);
    }();
    return fleet;
  }

  static const std::vector<trace::BankHistory>& Banks() {
    static const std::vector<trace::BankHistory> banks = [] {
      hbm::AddressCodec codec(Fleet().topology);
      return Fleet().log.GroupByBank(codec);
    }();
    return banks;
  }
};

TEST_F(PersistenceTest, PatternClassifierSurvivesRoundTrip) {
  analysis::PatternLabeler labeler(Fleet().topology);
  std::vector<LabelledBank> labelled;
  for (const auto& bank : Banks()) {
    if (bank.HasUer()) {
      labelled.push_back(LabelledBank{&bank, labeler.LabelClass(bank)});
    }
  }
  PatternClassifier trained(Fleet().topology, ml::LearnerKind::kRandomForest);
  Rng rng(1);
  trained.Train(labelled, rng);

  std::stringstream buffer;
  trained.SaveModel(buffer);

  PatternClassifier deployed(Fleet().topology,
                             ml::LearnerKind::kRandomForest);
  EXPECT_FALSE(deployed.trained());
  deployed.LoadModel(buffer);
  EXPECT_TRUE(deployed.trained());
  for (const auto& lb : labelled) {
    ASSERT_EQ(deployed.Classify(*lb.bank), trained.Classify(*lb.bank));
  }
}

TEST_F(PersistenceTest, CrossRowPredictorSurvivesRoundTrip) {
  analysis::PatternLabeler labeler(Fleet().topology);
  std::vector<const trace::BankHistory*> singles;
  for (const auto& bank : Banks()) {
    if (bank.HasUer() && labeler.LabelClass(bank) ==
                             hbm::FailureClass::kSingleRowClustering) {
      singles.push_back(&bank);
    }
  }
  CrossRowPredictor trained(Fleet().topology, ml::LearnerKind::kLgbmStyle);
  Rng rng(2);
  trained.Train(singles, rng);

  std::stringstream buffer;
  trained.SaveModel(buffer);

  CrossRowPredictor deployed(Fleet().topology, ml::LearnerKind::kLgbmStyle);
  deployed.LoadModel(buffer);
  for (const auto* bank : singles) {
    for (const auto& anchor : trained.AnchorsOf(*bank)) {
      ASSERT_EQ(deployed.PredictBlockProba(*bank, anchor),
                trained.PredictBlockProba(*bank, anchor));
    }
  }
}

TEST_F(PersistenceTest, FeatureImportanceMatchesExtractorArity) {
  analysis::PatternLabeler labeler(Fleet().topology);
  std::vector<LabelledBank> labelled;
  for (const auto& bank : Banks()) {
    if (bank.HasUer()) {
      labelled.push_back(LabelledBank{&bank, labeler.LabelClass(bank)});
    }
  }
  PatternClassifier classifier(Fleet().topology,
                               ml::LearnerKind::kRandomForest);
  Rng rng(3);
  classifier.Train(labelled, rng);
  const auto importance = classifier.FeatureImportance();
  EXPECT_EQ(importance.size(), classifier.extractor().num_features());
  double total = 0.0;
  for (double v : importance) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(PersistenceTest, UntrainedSaveThrows) {
  PatternClassifier classifier(Fleet().topology,
                               ml::LearnerKind::kRandomForest);
  std::stringstream buffer;
  EXPECT_THROW(classifier.SaveModel(buffer), ContractViolation);
  CrossRowPredictor predictor(Fleet().topology,
                              ml::LearnerKind::kRandomForest);
  EXPECT_THROW(predictor.SaveModel(buffer), ContractViolation);
  EXPECT_THROW(predictor.FeatureImportance(), ContractViolation);
}

TEST_F(PersistenceTest, LoadRejectsCorruptStream) {
  PatternClassifier classifier(Fleet().topology,
                               ml::LearnerKind::kRandomForest);
  std::istringstream garbage("garbage");
  EXPECT_THROW(classifier.LoadModel(garbage), ParseError);
}

TEST_F(PersistenceTest, ModelFilesCarryVersionedMagicHeaders) {
  analysis::PatternLabeler labeler(Fleet().topology);
  std::vector<LabelledBank> labelled;
  std::vector<const trace::BankHistory*> singles;
  for (const auto& bank : Banks()) {
    if (!bank.HasUer()) continue;
    const hbm::FailureClass cls = labeler.LabelClass(bank);
    labelled.push_back(LabelledBank{&bank, cls});
    if (cls == hbm::FailureClass::kSingleRowClustering) {
      singles.push_back(&bank);
    }
  }
  Rng rng(4);
  PatternClassifier classifier(Fleet().topology,
                               ml::LearnerKind::kRandomForest);
  classifier.Train(labelled, rng);
  CrossRowPredictor predictor(Fleet().topology,
                              ml::LearnerKind::kRandomForest);
  predictor.Train(singles, rng);

  std::stringstream pattern_buf, crossrow_buf;
  classifier.SaveModel(pattern_buf);
  predictor.SaveModel(crossrow_buf);
  EXPECT_EQ(PeekMagic(pattern_buf), kPatternModelMagic);
  EXPECT_EQ(PeekMagic(crossrow_buf), kCrossRowModelMagic);

  // A model stream of the wrong kind is rejected by its magic, not half
  // parsed.
  CrossRowPredictor wrong_kind(Fleet().topology,
                               ml::LearnerKind::kRandomForest);
  EXPECT_THROW(wrong_kind.LoadModel(pattern_buf), ParseError);

  // A stream from a newer format version is rejected with a message naming
  // both versions.
  std::istringstream reread(crossrow_buf.str());
  const std::string payload =
      ReadFramed(reread, kCrossRowModelMagic, kModelFrameVersion);
  std::ostringstream future;
  WriteFramed(future, kCrossRowModelMagic, kModelFrameVersion + 1, payload);
  std::istringstream future_in(future.str());
  CrossRowPredictor deployed(Fleet().topology,
                             ml::LearnerKind::kRandomForest);
  try {
    deployed.LoadModel(future_in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace cordial::core
