#include "core/features.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/check.hpp"

namespace cordial::core {
namespace {

using hbm::ErrorType;

trace::MceRecord Make(double t, std::uint32_t row, ErrorType type,
                      std::uint32_t col = 0) {
  trace::MceRecord r;
  r.time_s = t;
  r.address.row = row;
  r.address.col = col;
  r.type = type;
  return r;
}

trace::BankHistory MakeBank(std::vector<trace::MceRecord> events) {
  trace::BankHistory bank;
  std::sort(events.begin(), events.end());
  bank.events = std::move(events);
  return bank;
}

// ------------------------------------------------------------ truncation

TEST(TruncateAtUer, KeepsEventsUpToThirdUer) {
  const auto bank = MakeBank({
      Make(1, 10, ErrorType::kCe),
      Make(2, 11, ErrorType::kUer),
      Make(3, 12, ErrorType::kCe),
      Make(4, 13, ErrorType::kUer),
      Make(5, 14, ErrorType::kUeo),
      Make(6, 15, ErrorType::kUer),   // 3rd UER -> cutoff
      Make(7, 16, ErrorType::kCe),    // after cutoff
      Make(8, 17, ErrorType::kUer),   // 4th UER
  });
  const TruncatedHistory view = TruncateAtUer(bank, 3);
  EXPECT_DOUBLE_EQ(view.cutoff_s, 6.0);
  EXPECT_EQ(view.uer_count, 3u);
  EXPECT_EQ(view.events.size(), 6u);
  for (const auto& e : view.events) EXPECT_LE(e.time_s, 6.0);
}

TEST(TruncateAtUer, BankWithFewerUersKeepsAll) {
  const auto bank = MakeBank({Make(1, 1, ErrorType::kCe),
                              Make(2, 2, ErrorType::kUer),
                              Make(3, 3, ErrorType::kCe)});
  const TruncatedHistory view = TruncateAtUer(bank, 3);
  EXPECT_DOUBLE_EQ(view.cutoff_s, 2.0);
  EXPECT_EQ(view.uer_count, 1u);
  EXPECT_EQ(view.events.size(), 2u);  // trailing CE excluded
}

TEST(TruncateAtUer, RequiresAtLeastOneUer) {
  const auto bank = MakeBank({Make(1, 1, ErrorType::kCe)});
  EXPECT_THROW(TruncateAtUer(bank, 3), ContractViolation);
  EXPECT_THROW(TruncateAtUer(MakeBank({Make(1, 1, ErrorType::kUer)}), 0),
               ContractViolation);
}

// ----------------------------------------------------------- stride

TEST(EstimateRowStride, FindsMinimumGapAboveFloor) {
  EXPECT_EQ(EstimateRowStride({100, 132, 164}), 32u);
  EXPECT_EQ(EstimateRowStride({100, 102, 164}), 62u);  // 2 ignored (adjacency)
  EXPECT_EQ(EstimateRowStride({100, 101, 102}), 0u);   // all micro-adjacent
  EXPECT_EQ(EstimateRowStride({500}), 0u);
  EXPECT_EQ(EstimateRowStride({}), 0u);
  EXPECT_EQ(EstimateRowStride({10, 26, 74}), 16u);
}

// ----------------------------------------------- classification features

class ClassificationFeatureTest : public ::testing::Test {
 protected:
  hbm::TopologyConfig topology_;
  ClassificationFeatureExtractor extractor_{topology_, 3};

  std::map<std::string, double> Named(const trace::BankHistory& bank) {
    const auto values = extractor_.Extract(bank);
    std::map<std::string, double> named;
    for (std::size_t i = 0; i < values.size(); ++i) {
      named[extractor_.feature_names()[i]] = values[i];
    }
    return named;
  }
};

TEST_F(ClassificationFeatureTest, ArityMatchesNames) {
  const auto bank = MakeBank({Make(1, 5, ErrorType::kUer)});
  EXPECT_EQ(extractor_.Extract(bank).size(), extractor_.num_features());
  EXPECT_GE(extractor_.num_features(), 25u);
}

TEST_F(ClassificationFeatureTest, SpatialFeaturesHandComputed) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kCe),
      Make(2, 300, ErrorType::kCe),
      Make(3, 1000, ErrorType::kUer),
      Make(4, 1100, ErrorType::kUer),
      Make(5, 1040, ErrorType::kUer),
  });
  const auto f = Named(bank);
  EXPECT_DOUBLE_EQ(f.at("ce_row_min"), 100.0);
  EXPECT_DOUBLE_EQ(f.at("ce_row_max"), 300.0);
  EXPECT_DOUBLE_EQ(f.at("uer_row_min"), 1000.0);
  EXPECT_DOUBLE_EQ(f.at("uer_row_max"), 1100.0);
  EXPECT_DOUBLE_EQ(f.at("uer_row_span"), 100.0);
  // Consecutive UER row diffs: |1100-1000|=100, |1040-1100|=60.
  EXPECT_DOUBLE_EQ(f.at("uer_row_diff_min"), 60.0);
  EXPECT_DOUBLE_EQ(f.at("uer_row_diff_max"), 100.0);
  EXPECT_DOUBLE_EQ(f.at("uer_row_diff_avg"), 80.0);
  EXPECT_DOUBLE_EQ(f.at("uer_distinct_rows"), 3.0);
  // No UEOs: sentinel.
  EXPECT_DOUBLE_EQ(f.at("ueo_row_min"), kMissing);
  EXPECT_DOUBLE_EQ(f.at("ueo_dt_min"), kMissing);
}

TEST_F(ClassificationFeatureTest, TemporalAndCountFeatures) {
  const auto bank = MakeBank({
      Make(10, 100, ErrorType::kCe),
      Make(30, 101, ErrorType::kCe),
      Make(70, 102, ErrorType::kCe),
      Make(100, 200, ErrorType::kUer),
      Make(160, 201, ErrorType::kUer),
  });
  const auto f = Named(bank);
  // CE inter-arrivals: 20, 40.
  EXPECT_DOUBLE_EQ(f.at("ce_dt_min"), 20.0);
  EXPECT_DOUBLE_EQ(f.at("ce_dt_max"), 40.0);
  EXPECT_DOUBLE_EQ(f.at("ce_dt_avg"), 30.0);
  EXPECT_DOUBLE_EQ(f.at("uer_dt_min"), 60.0);
  EXPECT_DOUBLE_EQ(f.at("uer_time_span"), 60.0);
  EXPECT_DOUBLE_EQ(f.at("ce_count_before_first_uer"), 3.0);
  EXPECT_DOUBLE_EQ(f.at("ueo_count_before_first_uer"), 0.0);
  EXPECT_DOUBLE_EQ(f.at("ce_count_total"), 3.0);
}

TEST_F(ClassificationFeatureTest, OnlyFirstThreeUersAreUsed) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 110, ErrorType::kUer),
      Make(3, 120, ErrorType::kUer),
      Make(4, 30000, ErrorType::kUer),  // beyond the truncation
  });
  const auto f = Named(bank);
  EXPECT_DOUBLE_EQ(f.at("uer_row_max"), 120.0);
  EXPECT_DOUBLE_EQ(f.at("uer_row_span"), 20.0);
}

TEST_F(ClassificationFeatureTest, HalfAliasGapDetectsAliasing) {
  const std::uint32_t half = topology_.rows_per_bank / 2;
  const auto aliased = MakeBank({
      Make(1, 1000, ErrorType::kUer),
      Make(2, 1000 + half, ErrorType::kUer),
      Make(3, 1010, ErrorType::kUer),
  });
  EXPECT_NEAR(Named(aliased).at("uer_half_alias_gap"), 0.0, 10.0);

  const auto tight = MakeBank({
      Make(1, 1000, ErrorType::kUer),
      Make(2, 1010, ErrorType::kUer),
  });
  // Distance 10 vs half ~16384: gap is huge.
  EXPECT_GT(Named(tight).at("uer_half_alias_gap"), 16000.0);
}

TEST_F(ClassificationFeatureTest, CesAfterCutoffAreExcluded) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 110, ErrorType::kUer),
      Make(3, 120, ErrorType::kUer),
      Make(4, 50, ErrorType::kCe),  // after the 3rd UER
  });
  EXPECT_DOUBLE_EQ(Named(bank).at("ce_count_total"), 0.0);
}

// ------------------------------------------------------------ block window

TEST(BlockWindow, GeometryCentersOnAnchor) {
  BlockWindow w{/*anchor_row=*/1000, /*block_size=*/8, /*n_blocks=*/16,
                /*rows_per_bank=*/32768};
  EXPECT_EQ(w.radius(), 64u);
  EXPECT_EQ(w.WindowStart(), 936);
  const auto first = w.BlockRange(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first, 936u);
  EXPECT_EQ(first->second, 943u);
  const auto last = w.BlockRange(15);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->second, 1063u);
}

TEST(BlockWindow, BlockOfMapsRowsToBlocks) {
  BlockWindow w{1000, 8, 16, 32768};
  EXPECT_EQ(w.BlockOf(936), 0u);
  EXPECT_EQ(w.BlockOf(943), 0u);
  EXPECT_EQ(w.BlockOf(944), 1u);
  EXPECT_EQ(w.BlockOf(1000), 8u);
  EXPECT_EQ(w.BlockOf(1063), 15u);
  EXPECT_EQ(w.BlockOf(1064), std::nullopt);
  EXPECT_EQ(w.BlockOf(935), std::nullopt);
}

TEST(BlockWindow, ClipsAtBankStart) {
  BlockWindow w{10, 8, 16, 32768};  // window start = -54
  EXPECT_FALSE(w.BlockRange(0).has_value());   // entirely below row 0
  const auto partial = w.BlockRange(6);        // covers [-6, 1] -> [0, 1]
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(partial->first, 0u);
  EXPECT_EQ(partial->second, 1u);
  ASSERT_TRUE(w.BlockRange(8).has_value());
}

TEST(BlockWindow, ClipsAtBankEnd) {
  BlockWindow w{32760, 8, 16, 32768};
  const auto last = w.BlockRange(15);
  EXPECT_FALSE(last.has_value());
  const auto mid = w.BlockRange(8);  // [32760, 32767]
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->second, 32767u);
}

// ---------------------------------------------------- cross-row features

class CrossRowFeatureTest : public ::testing::Test {
 protected:
  hbm::TopologyConfig topology_;
  CrossRowFeatureExtractor extractor_{topology_, 8, 16};

  std::map<std::string, double> Named(const trace::BankHistory& bank,
                                      double t, std::uint32_t anchor,
                                      std::size_t block) {
    const auto values = extractor_.Extract(bank, t, anchor, block);
    std::map<std::string, double> named;
    for (std::size_t i = 0; i < values.size(); ++i) {
      named[extractor_.feature_names()[i]] = values[i];
    }
    return named;
  }
};

TEST_F(CrossRowFeatureTest, GeometryFeatures) {
  const auto bank = MakeBank({Make(1, 1000, ErrorType::kUer)});
  const auto f = Named(bank, 1.0, 1000, 8);
  EXPECT_DOUBLE_EQ(f.at("block_index"), 8.0);
  // Block 8 covers [1000, 1007]; center 1003.5; offset +3.5.
  EXPECT_DOUBLE_EQ(f.at("block_center_offset"), 3.5);
  EXPECT_DOUBLE_EQ(f.at("block_abs_offset"), 3.5);
  EXPECT_DOUBLE_EQ(f.at("uer_count"), 1.0);
  EXPECT_DOUBLE_EQ(f.at("nearest_uer_row_dist"), 3.5);
}

TEST_F(CrossRowFeatureTest, EventsAfterAnchorAreInvisible) {
  const auto bank = MakeBank({
      Make(1, 1000, ErrorType::kUer),
      Make(5, 1016, ErrorType::kUer),  // future
  });
  const auto f = Named(bank, 1.0, 1000, 8);
  EXPECT_DOUBLE_EQ(f.at("uer_count"), 1.0);
  const auto later = Named(bank, 5.0, 1016, 8);
  EXPECT_DOUBLE_EQ(later.at("uer_count"), 2.0);
}

TEST_F(CrossRowFeatureTest, CountsRowsInsideBlock) {
  const auto bank = MakeBank({
      Make(1, 1000, ErrorType::kUer),
      Make(2, 1002, ErrorType::kCe),
      Make(3, 1005, ErrorType::kCe),
      Make(4, 900, ErrorType::kCe),
  });
  // Block 8 of a window anchored at 1000 covers [1000, 1007].
  const auto f = Named(bank, 4.0, 1000, 8);
  EXPECT_DOUBLE_EQ(f.at("ce_rows_in_block"), 2.0);
  EXPECT_DOUBLE_EQ(f.at("uer_rows_in_block"), 1.0);
  EXPECT_DOUBLE_EQ(f.at("ce_count"), 3.0);
}

TEST_F(CrossRowFeatureTest, StrideFeaturesExposeStripGeometry) {
  const auto bank = MakeBank({
      Make(1, 1000, ErrorType::kUer),
      Make(2, 1032, ErrorType::kUer),
      Make(3, 1064, ErrorType::kUer),
  });
  // Anchor at the latest row; the strip stride is 32.
  const auto f = Named(bank, 3.0, 1064, 12);  // block 12 covers [1096,1103]
  EXPECT_DOUBLE_EQ(f.at("est_stride"), 32.0);
  // Block center 1099.5; nearest prior UER row 1064 -> dist 35.5; fold
  // 35.5 mod 32 = 3.5.
  EXPECT_DOUBLE_EQ(f.at("block_offset_fold_stride"), 3.5);
}

TEST_F(CrossRowFeatureTest, TemporalFeatures) {
  const auto bank = MakeBank({
      Make(10, 1000, ErrorType::kUer),
      Make(25, 1032, ErrorType::kUer),
  });
  const auto f = Named(bank, 25.0, 1032, 0);
  EXPECT_DOUBLE_EQ(f.at("uer_dt_min"), 15.0);
  EXPECT_DOUBLE_EQ(f.at("time_since_last_event"), 0.0);
  EXPECT_DOUBLE_EQ(f.at("time_since_first_uer"), 15.0);
}

TEST_F(CrossRowFeatureTest, RequiresPriorUerAndValidBlock) {
  const auto no_uer = MakeBank({Make(1, 5, ErrorType::kCe)});
  EXPECT_THROW(extractor_.Extract(no_uer, 2.0, 5, 0), ContractViolation);
  const auto bank = MakeBank({Make(1, 5, ErrorType::kUer)});
  // Anchor at row 5: low blocks fall outside the bank.
  EXPECT_THROW(extractor_.Extract(bank, 2.0, 5, 0), ContractViolation);
}

TEST_F(CrossRowFeatureTest, RejectsOddWindowConfig) {
  EXPECT_THROW(CrossRowFeatureExtractor(topology_, 8, 15), ContractViolation);
  EXPECT_THROW(CrossRowFeatureExtractor(topology_, 0, 16), ContractViolation);
}

}  // namespace
}  // namespace cordial::core
