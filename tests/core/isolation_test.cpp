#include "core/isolation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"

namespace cordial::core {
namespace {

using hbm::ErrorType;

trace::MceRecord Make(double t, std::uint32_t row, ErrorType type) {
  trace::MceRecord r;
  r.time_s = t;
  r.address.row = row;
  r.type = type;
  return r;
}

trace::BankHistory MakeBank(std::vector<trace::MceRecord> events,
                            std::uint64_t key = 1) {
  trace::BankHistory bank;
  bank.bank_key = key;
  std::sort(events.begin(), events.end());
  bank.events = std::move(events);
  return bank;
}

/// Scripted strategy: isolates a fixed set of rows when it sees the n-th
/// event of a bank.
class ScriptedStrategy final : public IsolationStrategy {
 public:
  ScriptedStrategy(std::size_t after_event, std::vector<std::uint32_t> rows)
      : after_event_(after_event), rows_(std::move(rows)) {}

  void OnBankStart(const trace::BankHistory&) override { seen_ = 0; }
  void OnEvent(const trace::BankHistory& bank, std::size_t,
               hbm::SparingLedger& ledger) override {
    if (++seen_ == after_event_) {
      for (std::uint32_t row : rows_) ledger.TrySpareRow(bank.bank_key, row);
    }
  }
  const std::string& name() const override { return name_; }

 private:
  std::size_t after_event_;
  std::vector<std::uint32_t> rows_;
  std::size_t seen_ = 0;
  std::string name_ = "scripted";
};

class IsolationTest : public ::testing::Test {
 protected:
  hbm::TopologyConfig topology_;
  IcrEvaluator evaluator_{topology_};
};

TEST_F(IsolationTest, RowsIsolatedBeforeFailureCountAsCovered) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 200, ErrorType::kUer),
      Make(3, 300, ErrorType::kUer),
  });
  // Isolate rows 200 and 300 right after the first event.
  ScriptedStrategy strategy(1, {200, 300});
  const IcrResult result = evaluator_.Evaluate({&bank}, strategy);
  EXPECT_EQ(result.total_uer_rows, 3u);
  EXPECT_EQ(result.covered_rows, 2u);
  EXPECT_NEAR(result.Icr(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(result.rows_spared, 2u);
}

TEST_F(IsolationTest, NoLookahead_IsolationAfterFailureDoesNotCount) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 200, ErrorType::kUer),
  });
  // Rows isolated only after the second event: too late for both.
  ScriptedStrategy strategy(2, {100, 200});
  const IcrResult result = evaluator_.Evaluate({&bank}, strategy);
  EXPECT_EQ(result.covered_rows, 0u);
}

TEST_F(IsolationTest, RepeatUersCountOnce) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 100, ErrorType::kUer),
      Make(3, 100, ErrorType::kUer),
  });
  ScriptedStrategy strategy(99, {});
  const IcrResult result = evaluator_.Evaluate({&bank}, strategy);
  EXPECT_EQ(result.total_uer_rows, 1u);
}

TEST_F(IsolationTest, PerBankStateIsReset) {
  const auto bank_a = MakeBank({Make(1, 100, ErrorType::kUer),
                                Make(2, 200, ErrorType::kUer)},
                               1);
  const auto bank_b = MakeBank({Make(1, 100, ErrorType::kUer),
                                Make(2, 200, ErrorType::kUer)},
                               2);
  // Strategy fires after the first event of EACH bank (OnBankStart resets).
  ScriptedStrategy strategy(1, {200});
  const IcrResult result = evaluator_.Evaluate({&bank_a, &bank_b}, strategy);
  EXPECT_EQ(result.covered_rows, 2u);
  EXPECT_EQ(result.total_uer_rows, 4u);
}

TEST_F(IsolationTest, InRowStrategyCoversExactlyNonSuddenRows) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kCe),   // precursor for row 100
      Make(2, 100, ErrorType::kUer),  // non-sudden -> covered
      Make(3, 200, ErrorType::kUer),  // sudden -> not covered
      Make(4, 300, ErrorType::kUeo),  // precursor for row 300
      Make(5, 300, ErrorType::kUer),  // non-sudden -> covered
  });
  InRowStrategy strategy;
  const IcrResult result = evaluator_.Evaluate({&bank}, strategy);
  EXPECT_EQ(result.total_uer_rows, 3u);
  EXPECT_EQ(result.covered_rows, 2u);
}

TEST_F(IsolationTest, NeighborRowsCoversAdjacentFailures) {
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 103, ErrorType::kUer),  // within +/-4 of 100 -> covered
      Make(3, 120, ErrorType::kUer),  // too far -> not covered
      Make(4, 118, ErrorType::kUer),  // within +/-4 of 120 -> covered
  });
  NeighborRowsStrategy strategy(4, topology_);
  const IcrResult result = evaluator_.Evaluate({&bank}, strategy);
  EXPECT_EQ(result.total_uer_rows, 4u);
  EXPECT_EQ(result.covered_rows, 2u);
}

TEST_F(IsolationTest, NeighborRowsClampsAtBankEdges) {
  const auto bank = MakeBank({
      Make(1, 1, ErrorType::kUer),
      Make(2, topology_.rows_per_bank - 2, ErrorType::kUer),
  });
  NeighborRowsStrategy strategy(4, topology_);
  EXPECT_NO_THROW(evaluator_.Evaluate({&bank}, strategy));
}

TEST_F(IsolationTest, BankSpareCoverageIsSeparated) {
  // A strategy that bank-spares on first event.
  class BankSpareStrategy final : public IsolationStrategy {
   public:
    void OnBankStart(const trace::BankHistory&) override {}
    void OnEvent(const trace::BankHistory& bank, std::size_t,
                 hbm::SparingLedger& ledger) override {
      ledger.TrySpareBank(bank.bank_key);
    }
    const std::string& name() const override { return name_; }
    std::string name_ = "bank-spare";
  };
  const auto bank = MakeBank({
      Make(1, 100, ErrorType::kUer),
      Make(2, 200, ErrorType::kUer),
      Make(3, 300, ErrorType::kUer),
  });
  BankSpareStrategy strategy;
  const IcrResult result = evaluator_.Evaluate({&bank}, strategy);
  EXPECT_EQ(result.covered_rows, 0u);             // not via row prediction
  EXPECT_EQ(result.covered_by_bank_spare, 2u);    // rows 200 and 300
  EXPECT_NEAR(result.Icr(), 0.0, 1e-12);
  EXPECT_NEAR(result.IcrWithBankSparing(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(result.banks_spared, 1u);
  EXPECT_GT(result.sparing_cost, 500.0);
}

TEST_F(IsolationTest, EmptyEvaluationIsZero) {
  InRowStrategy strategy;
  const IcrResult result = evaluator_.Evaluate({}, strategy);
  EXPECT_EQ(result.total_uer_rows, 0u);
  EXPECT_EQ(result.Icr(), 0.0);
}

TEST_F(IsolationTest, NullBankRejected) {
  InRowStrategy strategy;
  EXPECT_THROW(evaluator_.Evaluate({nullptr}, strategy), ContractViolation);
}

TEST_F(IsolationTest, NeighborRowsRejectsZeroAdjacency) {
  EXPECT_THROW(NeighborRowsStrategy(0, topology_), ContractViolation);
}

}  // namespace
}  // namespace cordial::core
