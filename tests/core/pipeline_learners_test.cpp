// Parameterized pipeline sweep over the three learner families — the
// structural Table IV property must hold for every learner, not just RF.
#include <gtest/gtest.h>

#include <map>

#include "core/pipeline.hpp"

namespace cordial::core {
namespace {

class PipelineLearnerTest : public ::testing::TestWithParam<ml::LearnerKind> {
 protected:
  static const trace::GeneratedFleet& Fleet() {
    static const trace::GeneratedFleet fleet = [] {
      hbm::TopologyConfig topology;
      trace::CalibrationProfile profile;
      profile.scale = 0.4;
      trace::FleetGenerator generator(topology, profile);
      return generator.Generate(99);
    }();
    return fleet;
  }

  static const PipelineResult& ResultFor(ml::LearnerKind kind) {
    static std::map<ml::LearnerKind, PipelineResult> cache;
    auto it = cache.find(kind);
    if (it == cache.end()) {
      PipelineConfig config;
      config.learner = kind;
      CordialPipeline pipeline(Fleet().topology, config);
      it = cache.emplace(kind, pipeline.Run(Fleet(), 5)).first;
    }
    return it->second;
  }
};

TEST_P(PipelineLearnerTest, CordialDominatesBaseline) {
  const PipelineResult& result = ResultFor(GetParam());
  EXPECT_GT(result.cordial.block_metrics.f1,
            result.neighbor_baseline.block_metrics.f1);
  EXPECT_GT(result.cordial.icr.Icr(), result.neighbor_baseline.icr.Icr());
}

TEST_P(PipelineLearnerTest, InRowParadigmIsTheFloor) {
  const PipelineResult& result = ResultFor(GetParam());
  EXPECT_LT(result.in_row_icr.Icr(), result.cordial.icr.Icr());
  EXPECT_LT(result.in_row_icr.Icr(), 0.12);
}

TEST_P(PipelineLearnerTest, PatternClassificationIsStrong) {
  const PipelineResult& result = ResultFor(GetParam());
  EXPECT_GT(result.pattern_confusion.WeightedAverage().f1, 0.75);
}

TEST_P(PipelineLearnerTest, SparingSpendIsAccounted) {
  const PipelineResult& result = ResultFor(GetParam());
  EXPECT_GT(result.cordial.icr.rows_spared, 0u);
  EXPECT_GT(result.cordial.icr.sparing_cost, 0.0);
  // Bank sparing fires for scattered-classified banks under the default
  // policy.
  EXPECT_GT(result.cordial.icr.banks_spared, 0u);
  // And bank-spared coverage is tracked separately from the paper ICR.
  EXPECT_GE(result.cordial.icr.IcrWithBankSparing(),
            result.cordial.icr.Icr());
}

INSTANTIATE_TEST_SUITE_P(AllLearners, PipelineLearnerTest,
                         ::testing::Values(ml::LearnerKind::kRandomForest,
                                           ml::LearnerKind::kXgbStyle,
                                           ml::LearnerKind::kLgbmStyle),
                         [](const auto& info) {
                           switch (info.param) {
                             case ml::LearnerKind::kRandomForest:
                               return "RandomForest";
                             case ml::LearnerKind::kXgbStyle:
                               return "XgbStyle";
                             default:
                               return "LgbmStyle";
                           }
                         });

}  // namespace
}  // namespace cordial::core
