// PredictionEngine: the live streaming path must reproduce the offline ICR
// replay exactly (same models, same fleet, same sparing budgets), stay
// invariant under raw-record retention bounds, and enforce its contracts.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/labeler.hpp"
#include "common/check.hpp"
#include "core/isolation.hpp"
#include "hbm/address.hpp"
#include "trace/fleet.hpp"

namespace cordial::core {
namespace {

/// Small fleet plus models trained on it, built once and shared read-only.
struct World {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  std::vector<trace::BankHistory> banks;
  std::vector<const trace::BankHistory*> uer_banks;
  PatternClassifier classifier;
  CrossRowPredictor single_pred;
  CrossRowPredictor double_pred;
  bool double_ok = false;

  World()
      : fleet(MakeFleet(topology)),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      uer_banks.push_back(&bank);
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    Rng rng(99);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;  // too few double-cluster banks at this scale
    }
  }

  static trace::GeneratedFleet MakeFleet(const hbm::TopologyConfig& topology) {
    trace::CalibrationProfile profile;
    profile.scale = 0.08;
    return trace::FleetGenerator(topology, profile).Generate(5);
  }

  const CrossRowPredictor& effective_double() const {
    return double_ok ? double_pred : single_pred;
  }
  const CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }
};

const World& SharedWorld() {
  static const World* world = new World();
  return *world;
}

TEST(PredictionEngine, StreamingMatchesIcrReplay) {
  const World& w = SharedWorld();
  PredictionEngine engine(w.topology, w.classifier, w.single_pred,
                          w.double_or_null());
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    engine.Observe(record);
  }

  const IcrEvaluator evaluator(w.topology);
  CordialStrategy strategy(w.classifier, w.single_pred, w.effective_double());
  const IcrResult icr = evaluator.Evaluate(w.uer_banks, strategy);

  ASSERT_GT(icr.total_uer_rows, 0u);
  EXPECT_EQ(engine.stats().uer_rows_total, icr.total_uer_rows);
  EXPECT_EQ(engine.stats().uer_rows_covered, icr.covered_rows);
  EXPECT_EQ(engine.stats().uer_rows_covered_by_bank,
            icr.covered_by_bank_spare);
  EXPECT_EQ(engine.ledger().rows_spared(), icr.rows_spared);
  EXPECT_EQ(engine.ledger().banks_spared(), icr.banks_spared);
  EXPECT_DOUBLE_EQ(engine.ledger().total_cost(), icr.sparing_cost);
  EXPECT_EQ(engine.stats().rows_isolated, icr.rows_spared);
  EXPECT_DOUBLE_EQ(engine.stats().Icr(), icr.Icr());
  EXPECT_DOUBLE_EQ(engine.stats().IcrWithBankSparing(),
                   icr.IcrWithBankSparing());
  EXPECT_EQ(engine.stats().events, w.fleet.log.size());
}

TEST(PredictionEngine, RetentionBoundDoesNotChangeDecisions) {
  const World& w = SharedWorld();
  EngineConfig unbounded;
  unbounded.retention.max_events_per_bank = 0;
  EngineConfig bounded;
  bounded.retention.max_events_per_bank = 4;

  PredictionEngine a(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), unbounded);
  PredictionEngine b(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), bounded);
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    a.Observe(record);
    b.Observe(record);
  }

  // Decisions come from profiles, not retained records: identical tallies.
  EXPECT_EQ(a.stats().banks_classified, b.stats().banks_classified);
  EXPECT_EQ(a.stats().banks_bank_spared, b.stats().banks_bank_spared);
  EXPECT_EQ(a.stats().predictions_issued, b.stats().predictions_issued);
  EXPECT_EQ(a.stats().rows_isolated, b.stats().rows_isolated);
  EXPECT_EQ(a.stats().uer_rows_covered, b.stats().uer_rows_covered);
  EXPECT_EQ(a.stats().uer_rows_covered_by_bank,
            b.stats().uer_rows_covered_by_bank);
  EXPECT_EQ(a.ledger().rows_spared(), b.ledger().rows_spared());
  EXPECT_EQ(a.ledger().banks_spared(), b.ledger().banks_spared());

  // The bound actually bit: records were evicted and memory stayed small.
  EXPECT_EQ(a.replayer().records_dropped(), 0u);
  EXPECT_GT(b.replayer().records_dropped(), 0u);
  EXPECT_EQ(b.replayer().record_count(), a.replayer().record_count());
  for (const trace::BankHistory* bank : w.uer_banks) {
    const trace::BankHistory* retained = b.replayer().Find(bank->bank_key);
    ASSERT_NE(retained, nullptr);
    EXPECT_LE(retained->events.size(), 4u);
  }
}

TEST(PredictionEngine, BankSpareStatsCountLedgerSuccessesOnly) {
  const World& w = SharedWorld();
  // Scattered banks re-request a bank spare at every post-trigger UER; the
  // stat must count distinct retired banks, not requests.
  PredictionEngine with_sparing(w.topology, w.classifier, w.single_pred,
                                w.double_or_null());
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    with_sparing.Observe(record);
  }
  EXPECT_EQ(with_sparing.stats().banks_bank_spared,
            with_sparing.ledger().banks_spared());

  // With bank sparing unavailable every TrySpareBank fails — the stat must
  // stay at zero even though the policy still asks.
  EngineConfig no_bank_sparing;
  no_bank_sparing.budget.bank_sparing_available = false;
  PredictionEngine without(w.topology, w.classifier, w.single_pred,
                           w.double_or_null(), no_bank_sparing);
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    without.Observe(record);
  }
  EXPECT_GT(with_sparing.stats().banks_bank_spared, 0u);
  EXPECT_EQ(without.ledger().banks_spared(), 0u);
  EXPECT_EQ(without.stats().banks_bank_spared, 0u);
}

TEST(PredictionEngine, DropSkewPolicyCountsAndSkipsStaleRecords) {
  const World& w = SharedWorld();
  EngineConfig config;
  config.retention.skew_policy = trace::TimeSkewPolicy::kDrop;
  PredictionEngine engine(w.topology, w.classifier, w.single_pred,
                          w.double_or_null(), config);
  trace::MceRecord r;
  r.time_s = 10.0;
  r.type = hbm::ErrorType::kCe;
  engine.Observe(r);
  r.time_s = 9.0;
  const IsolationActions actions = engine.Observe(r);
  EXPECT_EQ(actions, IsolationActions{});
  EXPECT_EQ(engine.stats().records_skew_dropped, 1u);
  // Accepted-event accounting is untouched by the drop.
  EXPECT_EQ(engine.stats().events, 1u);
  EXPECT_EQ(engine.replayer().record_count(), 1u);
}

TEST(PredictionEngine, RejectsTimeTravel) {
  const World& w = SharedWorld();
  PredictionEngine engine(w.topology, w.classifier, w.single_pred,
                          w.double_or_null());
  trace::MceRecord r;
  r.time_s = 10.0;
  r.type = hbm::ErrorType::kCe;
  engine.Observe(r);
  r.time_s = 9.0;
  EXPECT_THROW(engine.Observe(r), ContractViolation);
}

TEST(PredictionEngine, RequiresTrainedModels) {
  const World& w = SharedWorld();
  PatternClassifier raw(w.topology, ml::LearnerKind::kRandomForest);
  EXPECT_THROW(PredictionEngine(w.topology, raw, w.single_pred),
               ContractViolation);
}

TEST(PredictionEngine, RejectsTriggerBeforeTruncation) {
  const World& w = SharedWorld();
  // A trigger below the classification truncation depth would let the
  // truncated view keep growing after the decision point (lookahead).
  CrossRowConfig early_config;
  early_config.trigger_uers = 2;
  CrossRowPredictor early(w.topology, ml::LearnerKind::kRandomForest,
                          early_config);
  std::stringstream model;
  w.single_pred.SaveModel(model);
  early.LoadModel(model);
  EXPECT_THROW(PredictionEngine(w.topology, w.classifier, early),
               ContractViolation);
  EXPECT_THROW(CordialStrategy(w.classifier, early, early),
               ContractViolation);
}

}  // namespace
}  // namespace cordial::core
