// End-to-end determinism of the parallel execution layer: fleet generation,
// random-forest training, and ICR replay must produce bit-identical results
// at every thread count, and stay stable for a fixed seed across releases.
//
// The golden hashes below are captured from this implementation (the
// parallel layer re-keyed RNG consumption to per-task forks, so pre-change
// serial output is not comparable); they pin the (seed -> output) mapping
// so any accidental change to RNG consumption order fails loudly.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/isolation.hpp"
#include "hbm/address.hpp"
#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "ml/forest.hpp"
#include "trace/error_log.hpp"
#include "trace/fleet.hpp"

namespace cordial {
namespace {

// FNV-1a over 64-bit words — stable, order-sensitive.
std::uint64_t HashMix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

std::uint64_t HashDouble(std::uint64_t h, double d) {
  return HashMix(h, std::bit_cast<std::uint64_t>(d));
}

std::uint64_t FleetHash(const trace::GeneratedFleet& fleet) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const trace::MceRecord& r : fleet.log.records()) {
    h = HashDouble(h, r.time_s);
    h = HashMix(h, (static_cast<std::uint64_t>(r.address.npu) << 40) ^
                       (static_cast<std::uint64_t>(r.address.hbm) << 32) ^
                       (static_cast<std::uint64_t>(r.address.row) << 10) ^
                       r.address.col);
    h = HashMix(h, static_cast<std::uint64_t>(r.type));
  }
  for (const trace::BankTruth& b : fleet.banks) {
    h = HashMix(h, b.bank_key);
    h = HashMix(h, static_cast<std::uint64_t>(b.shape));
    for (const std::uint32_t row : b.planned_uer_rows) h = HashMix(h, row);
  }
  return h;
}

std::uint64_t HashString(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) h = HashMix(h, static_cast<unsigned char>(c));
  return h;
}

trace::GeneratedFleet SmallFleet(std::uint64_t seed) {
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = 0.05;
  return trace::FleetGenerator(topology, profile).Generate(seed);
}

std::uint64_t FleetHashAt(std::size_t threads, std::uint64_t seed) {
  SetThreadCount(threads);
  const std::uint64_t h = FleetHash(SmallFleet(seed));
  SetThreadCount(0);
  return h;
}

/// Deterministic two-class dataset with informative and noise features.
ml::Dataset SyntheticDataset() {
  ml::Dataset data(/*num_features=*/6, /*num_classes=*/2);
  Rng rng(2024);
  for (int i = 0; i < 600; ++i) {
    const int label = static_cast<int>(rng.UniformU64(2));
    double row[6];
    for (double& v : row) v = rng.UniformReal();
    row[0] += label * 0.8;
    row[1] -= label * 0.5;
    data.AddRow(row, label);
  }
  return data;
}

std::string ForestFingerprint(std::size_t threads, const ml::Dataset& data) {
  SetThreadCount(threads);
  ml::RandomForestOptions options;
  options.n_trees = 31;
  ml::RandomForestClassifier forest(options);
  Rng rng(123);
  forest.Fit(data, rng);
  SetThreadCount(0);
  std::ostringstream out;
  forest.Serialize(out);
  return out.str();
}

// Golden values captured at CORDIAL_THREADS=1 on the reference toolchain.
constexpr std::uint64_t kGoldenFleetHash = 0x71fa4cf20ccef6d9ULL;
constexpr std::uint64_t kGoldenForestHash = 0x7561d050aabc052cULL;

TEST(ParallelDeterminism, FleetIdenticalAcrossThreadCounts) {
  const std::uint64_t h1 = FleetHashAt(1, 42);
  const std::uint64_t h2 = FleetHashAt(2, 42);
  const std::uint64_t h8 = FleetHashAt(8, 42);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h8);
}

TEST(ParallelDeterminism, FleetSeedStableGolden) {
  EXPECT_EQ(FleetHashAt(1, 42), kGoldenFleetHash)
      << std::hex << "0x" << FleetHashAt(1, 42);
}

TEST(ParallelDeterminism, ForestIdenticalAcrossThreadCounts) {
  const ml::Dataset data = SyntheticDataset();
  const std::string f1 = ForestFingerprint(1, data);
  const std::string f2 = ForestFingerprint(2, data);
  const std::string f8 = ForestFingerprint(8, data);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f1, f8);
}

TEST(ParallelDeterminism, ForestSeedStableGolden) {
  const ml::Dataset data = SyntheticDataset();
  const std::uint64_t h = HashString(ForestFingerprint(1, data));
  EXPECT_EQ(h, kGoldenForestHash) << std::hex << "0x" << h;
}

TEST(ParallelDeterminism, IcrReplayMatchesSerial) {
  const trace::GeneratedFleet fleet = SmallFleet(7);
  hbm::AddressCodec codec(fleet.topology);
  const std::vector<trace::BankHistory> banks = fleet.log.GroupByBank(codec);
  std::vector<const trace::BankHistory*> uer_banks;
  for (const trace::BankHistory& bank : banks) {
    if (bank.HasUer()) uer_banks.push_back(&bank);
  }
  ASSERT_GT(uer_banks.size(), 1u);

  const core::IcrEvaluator evaluator(fleet.topology);
  auto evaluate_at = [&](std::size_t threads, core::IsolationStrategy& s) {
    SetThreadCount(threads);
    const core::IcrResult r = evaluator.Evaluate(uer_banks, s);
    SetThreadCount(0);
    return r;
  };
  auto expect_equal = [](const core::IcrResult& a, const core::IcrResult& b) {
    EXPECT_EQ(a.covered_rows, b.covered_rows);
    EXPECT_EQ(a.covered_by_bank_spare, b.covered_by_bank_spare);
    EXPECT_EQ(a.total_uer_rows, b.total_uer_rows);
    EXPECT_EQ(a.rows_spared, b.rows_spared);
    EXPECT_EQ(a.banks_spared, b.banks_spared);
    EXPECT_DOUBLE_EQ(a.sparing_cost, b.sparing_cost);
  };

  core::NeighborRowsStrategy neighbor(4, fleet.topology);
  expect_equal(evaluate_at(1, neighbor), evaluate_at(8, neighbor));
  core::InRowStrategy in_row;
  expect_equal(evaluate_at(1, in_row), evaluate_at(8, in_row));
}

}  // namespace
}  // namespace cordial
