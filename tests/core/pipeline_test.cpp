#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace cordial::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static const trace::GeneratedFleet& Fleet() {
    static const trace::GeneratedFleet fleet = [] {
      hbm::TopologyConfig topology;
      trace::CalibrationProfile profile;
      profile.scale = 0.25;
      trace::FleetGenerator generator(topology, profile);
      return generator.Generate(2024);
    }();
    return fleet;
  }

  static const PipelineResult& Result() {
    static const PipelineResult result = [] {
      PipelineConfig config;
      config.learner = ml::LearnerKind::kRandomForest;
      CordialPipeline pipeline(Fleet().topology, config);
      return pipeline.Run(Fleet(), 7);
    }();
    return result;
  }
};

TEST_F(PipelineTest, SplitRoughlySeventyThirty) {
  const auto& r = Result();
  const double test_fraction =
      static_cast<double>(r.test_banks) /
      static_cast<double>(r.test_banks + r.train_banks);
  EXPECT_NEAR(test_fraction, 0.3, 0.05);
}

TEST_F(PipelineTest, PatternClassificationQualityMatchesTableIIIShape) {
  const auto& cm = Result().pattern_confusion;
  const auto weighted = cm.WeightedAverage();
  // Paper Table III RF: weighted F1 0.854. We assert the broad band.
  EXPECT_GT(weighted.f1, 0.75);
  const double single_f1 =
      cm.Metrics(static_cast<int>(hbm::FailureClass::kSingleRowClustering)).f1;
  EXPECT_GT(single_f1, 0.9);
}

TEST_F(PipelineTest, CordialBeatsBaselineOnBlockF1) {
  // Paper Table IV: Cordial-RF F1 0.662 vs Neighbor Rows 0.347.
  EXPECT_GT(Result().cordial.block_metrics.f1,
            Result().neighbor_baseline.block_metrics.f1);
}

TEST_F(PipelineTest, IcrOrderingMatchesTableIV) {
  // in-row << neighbor rows < Cordial (paper: 4.39 < 13.31 < 19.58).
  const double in_row = Result().in_row_icr.Icr();
  const double baseline = Result().neighbor_baseline.icr.Icr();
  const double cordial = Result().cordial.icr.Icr();
  EXPECT_LT(in_row, baseline);
  EXPECT_LT(baseline, cordial);
  EXPECT_LT(in_row, 0.12);
  EXPECT_GT(cordial, 0.10);
}

TEST_F(PipelineTest, MethodNamesAreDescriptive) {
  EXPECT_EQ(Result().cordial.method, "Cordial-Random Forest");
  EXPECT_EQ(Result().neighbor_baseline.method, "Neighbor Rows");
}

TEST_F(PipelineTest, CrossRowTrainingSawBothClasses) {
  EXPECT_GT(Result().crossrow_train_samples_single, 100u);
}

TEST_F(PipelineTest, DeterministicGivenSeed) {
  PipelineConfig config;
  config.learner = ml::LearnerKind::kRandomForest;
  CordialPipeline pipeline(Fleet().topology, config);
  const PipelineResult again = pipeline.Run(Fleet(), 7);
  EXPECT_EQ(again.cordial.icr.covered_rows, Result().cordial.icr.covered_rows);
  EXPECT_DOUBLE_EQ(again.cordial.block_metrics.f1,
                   Result().cordial.block_metrics.f1);
  EXPECT_EQ(again.pattern_confusion.Accuracy(),
            Result().pattern_confusion.Accuracy());
}

TEST_F(PipelineTest, RunOnBanksMatchesRunOnFleet) {
  hbm::AddressCodec codec(Fleet().topology);
  const auto banks = Fleet().log.GroupByBank(codec);
  PipelineConfig config;
  config.learner = ml::LearnerKind::kRandomForest;
  CordialPipeline pipeline(Fleet().topology, config);
  const PipelineResult from_banks = pipeline.RunOnBanks(banks, 7);
  EXPECT_DOUBLE_EQ(from_banks.cordial.block_metrics.f1,
                   Result().cordial.block_metrics.f1);
}

TEST_F(PipelineTest, RunIsThreadCountInvariant) {
  // The full result — classification confusion, block metrics, every ICR
  // tally — must be bit-identical at 1 and 8 threads.
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = 0.12;
  const trace::GeneratedFleet fleet =
      trace::FleetGenerator(topology, profile).Generate(77);
  PipelineConfig config;
  config.learner = ml::LearnerKind::kRandomForest;
  CordialPipeline pipeline(topology, config);

  const auto run_at = [&](std::size_t threads) {
    SetThreadCount(threads);
    const PipelineResult r = pipeline.Run(fleet, 9);
    SetThreadCount(0);
    return r;
  };
  const PipelineResult serial = run_at(1);
  const PipelineResult parallel = run_at(8);

  EXPECT_EQ(serial.train_banks, parallel.train_banks);
  EXPECT_EQ(serial.test_banks, parallel.test_banks);
  EXPECT_EQ(serial.crossrow_train_samples_single,
            parallel.crossrow_train_samples_single);
  EXPECT_EQ(serial.pattern_confusion.Accuracy(),
            parallel.pattern_confusion.Accuracy());
  for (const auto& [a, b] :
       {std::pair{&serial.cordial, &parallel.cordial},
        std::pair{&serial.neighbor_baseline, &parallel.neighbor_baseline}}) {
    EXPECT_EQ(a->method, b->method);
    EXPECT_EQ(a->block_metrics.precision, b->block_metrics.precision);
    EXPECT_EQ(a->block_metrics.recall, b->block_metrics.recall);
    EXPECT_EQ(a->block_metrics.f1, b->block_metrics.f1);
    EXPECT_EQ(a->icr.covered_rows, b->icr.covered_rows);
    EXPECT_EQ(a->icr.covered_by_bank_spare, b->icr.covered_by_bank_spare);
    EXPECT_EQ(a->icr.total_uer_rows, b->icr.total_uer_rows);
    EXPECT_EQ(a->icr.rows_spared, b->icr.rows_spared);
    EXPECT_EQ(a->icr.banks_spared, b->icr.banks_spared);
    EXPECT_EQ(a->icr.sparing_cost, b->icr.sparing_cost);
  }
  EXPECT_EQ(serial.in_row_icr.covered_rows, parallel.in_row_icr.covered_rows);
  EXPECT_EQ(serial.in_row_icr.total_uer_rows,
            parallel.in_row_icr.total_uer_rows);
}

TEST_F(PipelineTest, ConfigValidation) {
  PipelineConfig bad;
  bad.test_fraction = 0.0;
  EXPECT_THROW(CordialPipeline(Fleet().topology, bad), ContractViolation);
}

TEST_F(PipelineTest, TooFewBanksRejected) {
  CordialPipeline pipeline(Fleet().topology, PipelineConfig{});
  EXPECT_THROW(pipeline.RunOnBanks({}, 1), ContractViolation);
}

}  // namespace
}  // namespace cordial::core
