#include "core/pattern_classifier.hpp"

#include <gtest/gtest.h>

#include "analysis/labeler.hpp"
#include "common/check.hpp"
#include "trace/fleet.hpp"

namespace cordial::core {
namespace {

class PatternClassifierTest : public ::testing::Test {
 protected:
  static const trace::GeneratedFleet& Fleet() {
    static const trace::GeneratedFleet fleet = [] {
      hbm::TopologyConfig topology;
      trace::CalibrationProfile profile;
      profile.scale = 0.2;
      trace::FleetGenerator generator(topology, profile);
      return generator.Generate(11);
    }();
    return fleet;
  }

  static const std::vector<trace::BankHistory>& Banks() {
    static const std::vector<trace::BankHistory> banks = [] {
      hbm::AddressCodec codec(Fleet().topology);
      return Fleet().log.GroupByBank(codec);
    }();
    return banks;
  }

  std::vector<LabelledBank> LabelledBanks() {
    analysis::PatternLabeler labeler(Fleet().topology);
    std::vector<LabelledBank> out;
    for (const auto& bank : Banks()) {
      if (!bank.HasUer()) continue;
      out.push_back(LabelledBank{&bank, labeler.LabelClass(bank)});
    }
    return out;
  }
};

TEST_F(PatternClassifierTest, BuildDatasetShape) {
  PatternClassifier classifier(Fleet().topology,
                               ml::LearnerKind::kRandomForest);
  const auto labelled = LabelledBanks();
  const ml::Dataset data = classifier.BuildDataset(labelled);
  EXPECT_EQ(data.size(), labelled.size());
  EXPECT_EQ(data.num_features(), classifier.extractor().num_features());
  EXPECT_EQ(data.num_classes(), hbm::kNumFailureClasses);
}

TEST_F(PatternClassifierTest, TrainedClassifierBeatsChanceByFar) {
  const auto labelled = LabelledBanks();
  ASSERT_GT(labelled.size(), 100u);
  const std::size_t n_train = labelled.size() * 7 / 10;
  std::vector<LabelledBank> train(labelled.begin(),
                                  labelled.begin() + n_train);
  std::vector<LabelledBank> test(labelled.begin() + n_train, labelled.end());

  PatternClassifier classifier(Fleet().topology,
                               ml::LearnerKind::kRandomForest);
  Rng rng(1);
  classifier.Train(train, rng);
  const ml::ConfusionMatrix cm = classifier.Evaluate(test);
  EXPECT_GT(cm.Accuracy(), 0.8);
  EXPECT_GT(cm.WeightedAverage().f1, 0.8);
}

TEST_F(PatternClassifierTest, SingleRowClusteringIsTheEasiestClass) {
  // Mirrors the paper's Table III finding.
  const auto labelled = LabelledBanks();
  const std::size_t n_train = labelled.size() * 7 / 10;
  std::vector<LabelledBank> train(labelled.begin(),
                                  labelled.begin() + n_train);
  std::vector<LabelledBank> test(labelled.begin() + n_train, labelled.end());
  PatternClassifier classifier(Fleet().topology,
                               ml::LearnerKind::kRandomForest);
  Rng rng(2);
  classifier.Train(train, rng);
  const ml::ConfusionMatrix cm = classifier.Evaluate(test);
  const double single_f1 =
      cm.Metrics(static_cast<int>(hbm::FailureClass::kSingleRowClustering)).f1;
  const double double_f1 =
      cm.Metrics(static_cast<int>(hbm::FailureClass::kDoubleRowClustering)).f1;
  EXPECT_GT(single_f1, 0.9);
  EXPECT_GE(single_f1, double_f1);
}

TEST_F(PatternClassifierTest, ClassifyProbaIsDistribution) {
  const auto labelled = LabelledBanks();
  PatternClassifier classifier(Fleet().topology, ml::LearnerKind::kLgbmStyle);
  Rng rng(3);
  classifier.Train(labelled, rng);
  const auto proba = classifier.ClassifyProba(*labelled.front().bank);
  ASSERT_EQ(proba.size(), 3u);
  double total = 0.0;
  for (double p : proba) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(PatternClassifierTest, UntrainedUseThrows) {
  PatternClassifier classifier(Fleet().topology,
                               ml::LearnerKind::kRandomForest);
  EXPECT_FALSE(classifier.trained());
  EXPECT_THROW(classifier.Classify(Banks().front()), ContractViolation);
  EXPECT_THROW(classifier.Evaluate({}), ContractViolation);
  Rng rng(4);
  EXPECT_THROW(classifier.Train({}, rng), ContractViolation);
}

TEST_F(PatternClassifierTest, DeterministicGivenSeed) {
  const auto labelled = LabelledBanks();
  PatternClassifier a(Fleet().topology, ml::LearnerKind::kRandomForest);
  PatternClassifier b(Fleet().topology, ml::LearnerKind::kRandomForest);
  Rng ra(7), rb(7);
  a.Train(labelled, ra);
  b.Train(labelled, rb);
  for (std::size_t i = 0; i < labelled.size(); i += 17) {
    EXPECT_EQ(a.Classify(*labelled[i].bank), b.Classify(*labelled[i].bank));
  }
}

}  // namespace
}  // namespace cordial::core
