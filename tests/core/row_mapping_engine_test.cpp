// Logical->physical row remapping through the streaming engine: an engine
// configured with a RowMapping and fed the device's logical stream must be
// bit-identical — state bytes and stats — to an identity engine fed the
// physical stream, and must still reproduce the offline ICR replay (which
// always works in physical row space).
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/labeler.hpp"
#include "common/check.hpp"
#include "core/isolation.hpp"
#include "hbm/address.hpp"
#include "trace/fleet.hpp"

namespace cordial::core {
namespace {

/// A small remapped fleet plus models trained on its physical-space banks.
struct RemapWorld {
  hbm::TopologyConfig topology;
  hbm::RowMapping mapping;
  trace::GeneratedFleet physical;      // identity-mapped reference
  trace::ErrorLog logical_log;         // the same stream in logical rows
  std::vector<trace::BankHistory> banks;
  std::vector<const trace::BankHistory*> uer_banks;
  PatternClassifier classifier;
  CrossRowPredictor single_pred;

  RemapWorld()
      : mapping(hbm::RowMapping::BitSwizzle(
            hbm::TopologyConfig{}.rows_per_bank, 3)),
        physical(MakeFleet(topology)),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest) {
    // Express the physical stream logically, preserving stream order: the
    // exact records a scrambling device would emit in the same sequence.
    logical_log = trace::RemapLogRowsToLogical(physical.log, mapping);

    hbm::AddressCodec codec(topology);
    banks = physical.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles;
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      uer_banks.push_back(&bank);
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      }
    }
    Rng rng(99);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
  }

  static trace::GeneratedFleet MakeFleet(const hbm::TopologyConfig& topology) {
    trace::CalibrationProfile profile;
    profile.scale = 0.08;
    // Fold a read-disturb component into the mix so the new shape flows
    // through labeling, training and the engine alongside the paper's five.
    const double keep = 0.85;
    profile.mix_single *= keep;
    profile.mix_double *= keep;
    profile.mix_half *= keep;
    profile.mix_scattered *= keep;
    profile.mix_column *= keep;
    profile.mix_read_disturb =
        1.0 - (profile.mix_single + profile.mix_double + profile.mix_half +
               profile.mix_scattered + profile.mix_column);
    return trace::FleetGenerator(topology, profile).Generate(5);
  }
};

const RemapWorld& SharedWorld() {
  static const RemapWorld* world = new RemapWorld();
  return *world;
}

std::string StateBytes(const PredictionEngine& engine) {
  std::ostringstream out;
  engine.SaveState(out);
  return out.str();
}

TEST(RowMappingEngine, LogicalStreamMatchesPhysicalStreamBitForBit) {
  const RemapWorld& w = SharedWorld();

  EngineConfig mapped_config;
  mapped_config.row_mapping = w.mapping;
  PredictionEngine mapped(w.topology, w.classifier, w.single_pred, nullptr,
                          mapped_config);
  for (const trace::MceRecord& record : w.logical_log.records()) {
    mapped.Observe(record);
  }

  PredictionEngine identity(w.topology, w.classifier, w.single_pred, nullptr);
  for (const trace::MceRecord& record : w.physical.log.records()) {
    identity.Observe(record);
  }

  ASSERT_GT(mapped.stats().events, 0u);
  EXPECT_EQ(mapped.stats().events, identity.stats().events);
  EXPECT_EQ(mapped.stats().uer_rows_covered, identity.stats().uer_rows_covered);
  EXPECT_EQ(mapped.stats().rows_isolated, identity.stats().rows_isolated);
  // The mapping is config, not state: both engines persist physical rows
  // and their serialized states are byte-identical.
  EXPECT_EQ(StateBytes(mapped), StateBytes(identity));
}

TEST(RowMappingEngine, StreamingUnderSwizzleMatchesIcrReplayOnPhysical) {
  const RemapWorld& w = SharedWorld();

  EngineConfig config;
  config.row_mapping = w.mapping;
  PredictionEngine engine(w.topology, w.classifier, w.single_pred, nullptr,
                          config);
  for (const trace::MceRecord& record : w.logical_log.records()) {
    engine.Observe(record);
  }

  const IcrEvaluator evaluator(w.topology);
  CordialStrategy strategy(w.classifier, w.single_pred, w.single_pred);
  const IcrResult icr = evaluator.Evaluate(w.uer_banks, strategy);

  ASSERT_GT(icr.total_uer_rows, 0u);
  EXPECT_EQ(engine.stats().uer_rows_total, icr.total_uer_rows);
  EXPECT_EQ(engine.stats().uer_rows_covered, icr.covered_rows);
  EXPECT_EQ(engine.stats().rows_isolated, icr.rows_spared);
  EXPECT_DOUBLE_EQ(engine.stats().Icr(), icr.Icr());
}

TEST(RowMappingEngine, CheckpointRoundTripsUnderAMapping) {
  const RemapWorld& w = SharedWorld();

  EngineConfig config;
  config.row_mapping = w.mapping;
  PredictionEngine engine(w.topology, w.classifier, w.single_pred, nullptr,
                          config);
  const auto& records = w.logical_log.records();
  const std::size_t half = records.size() / 2;
  for (std::size_t i = 0; i < half; ++i) engine.Observe(records[i]);

  std::stringstream state;
  engine.SaveState(state);
  // The restoring engine must be constructed with the same mapping — the
  // state frame carries physical rows only (the config contract).
  PredictionEngine resumed(w.topology, w.classifier, w.single_pred, nullptr,
                           config);
  resumed.RestoreState(state);
  for (std::size_t i = half; i < records.size(); ++i) {
    engine.Observe(records[i]);
    resumed.Observe(records[i]);
  }
  EXPECT_EQ(StateBytes(resumed), StateBytes(engine));
}

}  // namespace
}  // namespace cordial::core
