// Property tests pinning BankProfile's incremental statistics to the
// pre-refactor batch scans. The Reference* functions below are verbatim
// copies of the event-list scans the extractors used before the profile
// refactor; every feature vector must match them bit for bit — profiles are
// the only ingestion path now, and these tests are what keeps it honest.
#include "core/bank_profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/features.hpp"

namespace cordial::core {
namespace {

using hbm::ErrorType;

trace::MceRecord Make(double t, std::uint32_t row, ErrorType type) {
  trace::MceRecord r;
  r.time_s = t;
  r.address.row = row;
  r.type = type;
  return r;
}

trace::BankHistory MakeBank(std::vector<trace::MceRecord> events) {
  trace::BankHistory bank;
  bank.events = std::move(events);
  return bank;
}

// ----------------------- pre-refactor reference implementations ----------

struct Summary {
  double min = kMissing;
  double max = kMissing;
  double avg = kMissing;
};

Summary Summarize(const std::vector<double>& values) {
  if (values.empty()) return {};
  Summary s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  for (double v : values) total += v;
  s.avg = total / static_cast<double>(values.size());
  return s;
}

std::vector<double> ConsecutiveAbsDiffs(const std::vector<double>& values) {
  std::vector<double> diffs;
  for (std::size_t i = 1; i < values.size(); ++i) {
    diffs.push_back(std::fabs(values[i] - values[i - 1]));
  }
  return diffs;
}

std::vector<double> ReferenceClassFeatures(const trace::BankHistory& bank,
                                           const hbm::TopologyConfig& topology,
                                           std::size_t max_uers) {
  const TruncatedHistory view = TruncateAtUer(bank, max_uers);

  std::vector<double> ce_rows, ueo_rows, uer_rows, all_rows;
  std::vector<double> ce_times, ueo_times, uer_times;
  double first_uer_t = std::numeric_limits<double>::infinity();
  for (const trace::MceRecord& r : view.events) {
    const auto row = static_cast<double>(r.address.row);
    all_rows.push_back(row);
    switch (r.type) {
      case ErrorType::kCe:
        ce_rows.push_back(row);
        ce_times.push_back(r.time_s);
        break;
      case ErrorType::kUeo:
        ueo_rows.push_back(row);
        ueo_times.push_back(r.time_s);
        break;
      case ErrorType::kUer:
        uer_rows.push_back(row);
        uer_times.push_back(r.time_s);
        first_uer_t = std::min(first_uer_t, r.time_s);
        break;
    }
  }

  auto min_or_missing = [](const std::vector<double>& v) {
    return v.empty() ? kMissing : *std::min_element(v.begin(), v.end());
  };
  auto max_or_missing = [](const std::vector<double>& v) {
    return v.empty() ? kMissing : *std::max_element(v.begin(), v.end());
  };

  const double uer_min = min_or_missing(uer_rows);
  const double uer_max = max_or_missing(uer_rows);
  const double uer_span = uer_max - uer_min;

  double half_alias_gap = kMissing;
  {
    std::set<double> distinct(uer_rows.begin(), uer_rows.end());
    const double half = static_cast<double>(topology.rows_per_bank) / 2.0;
    for (auto a = distinct.begin(); a != distinct.end(); ++a) {
      for (auto b = std::next(a); b != distinct.end(); ++b) {
        const double gap = std::fabs(std::fabs(*b - *a) - half);
        if (half_alias_gap == kMissing || gap < half_alias_gap) {
          half_alias_gap = gap;
        }
      }
    }
  }

  const Summary uer_row_diff = Summarize(ConsecutiveAbsDiffs(uer_rows));
  const Summary all_row_diff = Summarize(ConsecutiveAbsDiffs(all_rows));
  const Summary ce_dt = Summarize(ConsecutiveAbsDiffs(ce_times));
  const Summary ueo_dt = Summarize(ConsecutiveAbsDiffs(ueo_times));
  const Summary uer_dt = Summarize(ConsecutiveAbsDiffs(uer_times));

  const double uer_time_span =
      uer_times.size() < 2 ? kMissing : uer_times.back() - uer_times.front();

  double ce_before = 0.0, ueo_before = 0.0;
  for (const trace::MceRecord& r : view.events) {
    if (r.time_s >= first_uer_t) break;
    if (r.type == ErrorType::kCe) ce_before += 1.0;
    if (r.type == ErrorType::kUeo) ueo_before += 1.0;
  }

  std::set<double> distinct_uer_rows(uer_rows.begin(), uer_rows.end());

  return {
      min_or_missing(ce_rows), max_or_missing(ce_rows),
      min_or_missing(ueo_rows), max_or_missing(ueo_rows),
      uer_min, uer_max, uer_span,
      uer_span / static_cast<double>(topology.rows_per_bank),
      uer_row_diff.min, uer_row_diff.max, uer_row_diff.avg,
      all_row_diff.min, all_row_diff.max, all_row_diff.avg,
      half_alias_gap,
      ce_dt.min, ce_dt.max, ce_dt.avg,
      ueo_dt.min, ueo_dt.max, ueo_dt.avg,
      uer_dt.min, uer_dt.max, uer_dt.avg,
      uer_time_span,
      ce_before, ueo_before,
      static_cast<double>(ce_rows.size()),
      static_cast<double>(ueo_rows.size()),
      static_cast<double>(distinct_uer_rows.size()),
  };
}

std::vector<double> ReferenceCrossRowFeatures(
    const trace::BankHistory& bank, const hbm::TopologyConfig& topology,
    const BlockWindow& window, double anchor_time_s, std::uint32_t anchor_row,
    std::size_t block) {
  const auto range = window.BlockRange(block);
  CORDIAL_CHECK_MSG(range.has_value(), "reference block out of bank");
  const double block_center = 0.5 * (static_cast<double>(range->first) +
                                     static_cast<double>(range->second));

  std::vector<double> ce_rows, ueo_rows, uer_rows, all_rows;
  std::vector<double> ce_times, ueo_times, uer_times;
  double last_event_t = kMissing;
  for (const trace::MceRecord& r : bank.events) {
    if (r.time_s > anchor_time_s) break;
    const auto row = static_cast<double>(r.address.row);
    all_rows.push_back(row);
    last_event_t = r.time_s;
    switch (r.type) {
      case ErrorType::kCe:
        ce_rows.push_back(row);
        ce_times.push_back(r.time_s);
        break;
      case ErrorType::kUeo:
        ueo_rows.push_back(row);
        ueo_times.push_back(r.time_s);
        break;
      case ErrorType::kUer:
        uer_rows.push_back(row);
        uer_times.push_back(r.time_s);
        break;
    }
  }

  auto nearest_dist = [&](const std::vector<double>& rows) {
    double best = kMissing;
    for (double row : rows) {
      const double d = std::fabs(row - block_center);
      if (best == kMissing || d < best) best = d;
    }
    return best;
  };
  auto rows_in_range = [&](const std::vector<double>& rows) {
    std::set<double> distinct;
    for (double row : rows) {
      if (row >= static_cast<double>(range->first) &&
          row <= static_cast<double>(range->second)) {
        distinct.insert(row);
      }
    }
    return static_cast<double>(distinct.size());
  };

  std::set<double> distinct_uer(uer_rows.begin(), uer_rows.end());
  double uer_in_window = 0.0, uer_within_8 = 0.0;
  for (double row : distinct_uer) {
    if (std::fabs(row - static_cast<double>(anchor_row)) <=
        static_cast<double>(window.radius())) {
      uer_in_window += 1.0;
    }
    if (std::fabs(row - static_cast<double>(anchor_row)) <= 8.0) {
      uer_within_8 += 1.0;
    }
  }

  const Summary uer_row_diff = Summarize(ConsecutiveAbsDiffs(uer_rows));
  const Summary all_row_diff = Summarize(ConsecutiveAbsDiffs(all_rows));
  const Summary ce_dt = Summarize(ConsecutiveAbsDiffs(ce_times));
  const Summary ueo_dt = Summarize(ConsecutiveAbsDiffs(ueo_times));
  const Summary uer_dt = Summarize(ConsecutiveAbsDiffs(uer_times));

  const double uer_span = *std::max_element(uer_rows.begin(), uer_rows.end()) -
                          *std::min_element(uer_rows.begin(), uer_rows.end());

  std::vector<std::uint32_t> uer_rows_u32;
  uer_rows_u32.reserve(uer_rows.size());
  for (double row : uer_rows) {
    uer_rows_u32.push_back(static_cast<std::uint32_t>(row));
  }
  const std::uint32_t stride = EstimateRowStride(uer_rows_u32);
  double fold = kMissing;
  double k_positions = kMissing;
  if (stride > 0) {
    const double nearest_uer = nearest_dist(uer_rows);
    const double mod = std::fmod(nearest_uer, static_cast<double>(stride));
    fold = std::min(mod, static_cast<double>(stride) - mod);
    k_positions = nearest_uer / static_cast<double>(stride);
  }

  return {
      static_cast<double>(block),
      block_center - static_cast<double>(anchor_row),
      std::fabs(block_center - static_cast<double>(anchor_row)),
      static_cast<double>(anchor_row) /
          static_cast<double>(topology.rows_per_bank),
      nearest_dist(ce_rows), nearest_dist(ueo_rows), nearest_dist(uer_rows),
      rows_in_range(ce_rows), rows_in_range(ueo_rows), rows_in_range(uer_rows),
      uer_in_window, uer_within_8,
      uer_row_diff.min, uer_row_diff.max, uer_row_diff.avg,
      all_row_diff.min, all_row_diff.max, all_row_diff.avg,
      uer_span,
      stride == 0 ? kMissing : static_cast<double>(stride), fold, k_positions,
      ce_dt.min, ce_dt.max, ueo_dt.min, ueo_dt.max,
      uer_dt.min, uer_dt.max, uer_dt.avg,
      last_event_t == kMissing ? kMissing : anchor_time_s - last_event_t,
      anchor_time_s - uer_times.front(),
      static_cast<double>(ce_rows.size()),
      static_cast<double>(ueo_rows.size()),
      static_cast<double>(uer_rows.size()),
      static_cast<double>(ueo_rows.size() + uer_rows.size()),
      static_cast<double>(all_rows.size()),
  };
}

// -------------------------------------------------------------- harness

/// Random bank with deliberate timestamp ties and row repeats.
std::vector<trace::MceRecord> RandomEvents(Rng& rng, std::size_t n) {
  std::vector<trace::MceRecord> events;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // ~25% chance of reusing the previous timestamp (a tie).
    if (i == 0 || !rng.Bernoulli(0.25)) t += rng.UniformReal(0.5, 50.0);
    // Cluster rows so repeats and small gaps are common.
    const std::uint32_t row =
        rng.Bernoulli(0.5)
            ? static_cast<std::uint32_t>(1000 + rng.UniformInt(0, 40))
            : static_cast<std::uint32_t>(rng.UniformInt(0, 4000));
    const double p = rng.UniformReal();
    const ErrorType type = p < 0.55   ? ErrorType::kCe
                           : p < 0.70 ? ErrorType::kUeo
                                      : ErrorType::kUer;
    events.push_back(Make(t, row, type));
  }
  return events;
}

void ExpectBitIdentical(const std::vector<double>& expected,
                        const std::vector<double>& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // Bit-level comparison: the refactor promises identical arithmetic.
    EXPECT_EQ(expected[i], actual[i]) << what << " feature " << i;
  }
}

TEST(BankProfileProperty, IncrementalMatchesBatchAtEveryPrefix) {
  const hbm::TopologyConfig topology;
  const ClassificationFeatureExtractor class_extractor(topology, 3);
  const CrossRowFeatureExtractor crossrow_extractor(topology, 8, 16);
  Rng rng(20240811);

  for (int trial = 0; trial < 25; ++trial) {
    const auto events = RandomEvents(rng, 60);
    BankProfile incremental(3);
    trace::BankHistory prefix;

    for (std::size_t k = 0; k < events.size(); ++k) {
      incremental.Observe(events[k]);
      prefix.events.push_back(events[k]);

      const bool has_uer = std::any_of(
          prefix.events.begin(), prefix.events.end(),
          [](const trace::MceRecord& r) { return r.type == ErrorType::kUer; });
      if (!has_uer) {
        EXPECT_FALSE(incremental.HasClassificationView());
        continue;
      }

      // Truncation state matches TruncateAtUer on the prefix.
      const TruncatedHistory view = TruncateAtUer(prefix, 3);
      ASSERT_TRUE(incremental.HasClassificationView());
      EXPECT_EQ(incremental.classification_cutoff_s(), view.cutoff_s);
      EXPECT_EQ(incremental.classification_uer_count(), view.uer_count);

      // Classification features: reference scan == batch wrapper ==
      // incremental profile, bit for bit.
      const auto reference = ReferenceClassFeatures(prefix, topology, 3);
      ExpectBitIdentical(reference, class_extractor.Extract(prefix),
                         "class batch wrapper");
      ExpectBitIdentical(reference,
                         class_extractor.ExtractFromProfile(incremental),
                         "class incremental");

      // Cross-row features at UER events, over every in-bank block.
      if (events[k].type != ErrorType::kUer) continue;
      const std::uint32_t anchor_row = events[k].address.row;
      const double anchor_time = events[k].time_s;
      const BlockWindow window = crossrow_extractor.WindowAt(anchor_row);
      for (std::size_t b = 0; b < 16; ++b) {
        if (!window.BlockRange(b).has_value()) continue;
        const auto cr_reference = ReferenceCrossRowFeatures(
            prefix, topology, window, anchor_time, anchor_row, b);
        ExpectBitIdentical(
            cr_reference,
            crossrow_extractor.Extract(prefix, anchor_time, anchor_row, b),
            "crossrow batch wrapper");
        ExpectBitIdentical(
            cr_reference,
            crossrow_extractor.ExtractFromProfile(incremental, anchor_time,
                                                  anchor_row, b),
            "crossrow incremental");
      }
    }
  }
}

// ------------------------------------------------------------ edge cases

TEST(BankProfile, TruncationAbsorbsTiesAtCutoff) {
  // A CE recorded after the 3rd UER but at the same timestamp belongs in
  // the truncated view (TruncateAtUer keeps every event with time <=
  // cutoff); a later UER at the cutoff does not (ties beyond the cap).
  const auto events = std::vector<trace::MceRecord>{
      Make(1, 10, ErrorType::kUer), Make(2, 20, ErrorType::kUer),
      Make(3, 30, ErrorType::kUer), Make(3, 40, ErrorType::kCe),
      Make(3, 50, ErrorType::kUer), Make(4, 60, ErrorType::kCe),
  };
  BankProfile profile(3);
  for (const auto& e : events) profile.Observe(e);
  EXPECT_EQ(profile.classification_cutoff_s(), 3.0);
  EXPECT_EQ(profile.classification_uer_count(), 3u);
  EXPECT_EQ(profile.classification().ce_total, 1u);   // the t=3 tie
  EXPECT_EQ(profile.classification().uer_events, 3u);  // t=3 row-50 dropped

  const hbm::TopologyConfig topology;
  const ClassificationFeatureExtractor extractor(topology, 3);
  ExpectBitIdentical(extractor.Extract(MakeBank(events)),
                     extractor.ExtractFromProfile(profile), "cutoff ties");
}

TEST(BankProfile, TrailingEventsAfterCutoffAreInvisible) {
  BankProfile profile(3);
  profile.Observe(Make(1, 10, ErrorType::kUer));
  profile.Observe(Make(2, 20, ErrorType::kUer));
  profile.Observe(Make(3, 30, ErrorType::kUer));
  const auto frozen_before = profile.classification().ce_total;
  profile.Observe(Make(9, 99, ErrorType::kCe));
  profile.Observe(Make(10, 77, ErrorType::kUer));
  EXPECT_EQ(profile.classification().ce_total, frozen_before);
  EXPECT_EQ(profile.classification_uer_count(), 3u);
  // The cross-row view keeps counting.
  EXPECT_EQ(profile.crossrow().ce_count, 1u);
  EXPECT_EQ(profile.uer_event_count(), 4u);
}

TEST(BankProfile, RepeatedRowsDoNotInflateDistinctSets) {
  BankProfile profile;
  profile.Observe(Make(1, 100, ErrorType::kUer));
  profile.Observe(Make(2, 100, ErrorType::kUer));
  profile.Observe(Make(3, 100, ErrorType::kUer));
  EXPECT_EQ(profile.distinct_uer_row_count(), 1u);
  EXPECT_TRUE(profile.HasUerRow(100));
  EXPECT_FALSE(profile.HasUerRow(101));
  EXPECT_EQ(profile.crossrow().EstimatedUerStride(), 0u);
}

TEST(BankProfile, GapMultisetSplitsOnMiddleInsertion) {
  BankProfile profile;
  profile.Observe(Make(1, 100, ErrorType::kUer));
  profile.Observe(Make(2, 164, ErrorType::kUer));
  EXPECT_EQ(profile.crossrow().EstimatedUerStride(), 64u);
  // Inserting 132 splits the 64-gap into two 32-gaps.
  profile.Observe(Make(3, 132, ErrorType::kUer));
  EXPECT_EQ(profile.crossrow().EstimatedUerStride(), 32u);
  // Micro-adjacent rows stay below the floor.
  profile.Observe(Make(4, 133, ErrorType::kUer));
  EXPECT_EQ(profile.crossrow().EstimatedUerStride(), 31u);
}

TEST(BankProfile, RejectsDecreasingTimestamps) {
  BankProfile profile;
  profile.Observe(Make(5, 1, ErrorType::kCe));
  EXPECT_THROW(profile.Observe(Make(4, 2, ErrorType::kCe)), ContractViolation);
  EXPECT_NO_THROW(profile.Observe(Make(5, 3, ErrorType::kCe)));
}

}  // namespace
}  // namespace cordial::core
