// Checkpoint-chain torture: a chain (binary full + dirty-bank deltas under
// a CRC manifest) must recover byte-identically to an uninterrupted
// reference, and corruption ANYWHERE — every byte-prefix truncation and
// every single-bit flip of every member — must fail closed to the newest
// intact prefix, quarantining exactly the damaged member by name. Plus the
// write/compaction policy, failed-write atomicity (failpoints), manifest
// fallback, scan rescue, and the offline fold/compaction tools.
#include "persist/chain.hpp"

#include <dirent.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "serve/checkpoint.hpp"
#include "serve/fleet_server.hpp"
#include "support/serve_world.hpp"

namespace cordial::persist {
namespace {

using serve::FleetServer;
using serve::test_support::SharedWorld;
using serve::test_support::World;

constexpr std::size_t kShardCount = 2;

FleetServer MakeServer(const World& w) {
  serve::FleetServerConfig config;
  config.shard_count = kShardCount;
  return FleetServer(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
}

void Feed(FleetServer& server, const World& w, std::size_t begin,
          std::size_t end) {
  const auto& records = w.fleet.log.records();
  for (std::size_t i = begin; i < std::min(end, records.size()); ++i) {
    server.Submit(records[i]);
  }
  server.Drain();
}

std::string TextCheckpoint(const FleetServer& server) {
  std::ostringstream out;
  server.SaveCheckpoint(out, core::StateEncoding::kText);
  return out.str();
}

std::string BinaryCheckpoint(const FleetServer& server) {
  std::ostringstream out;
  server.SaveCheckpoint(out, core::StateEncoding::kBinary);
  return out.str();
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// Fresh scratch directory per test; files are wiped between torture
/// iterations via ResetDir.
class ScratchDir {
 public:
  ScratchDir() {
    char templ[] = "/tmp/cordial_chain_XXXXXX";
    CORDIAL_CHECK_MSG(::mkdtemp(templ) != nullptr, "mkdtemp failed");
    path_ = templ;
  }
  ~ScratchDir() {
    // Best-effort cleanup; scratch contents are tiny.
    Clear();
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return path_ + "/" + name;
  }

  /// Remove every regular file in the directory.
  void Clear() {
    std::vector<std::string> names = List();
    for (const std::string& name : names) ::unlink(File(name).c_str());
  }

  std::vector<std::string> List() const {
    std::vector<std::string> names;
    DIR* dir = ::opendir(path_.c_str());
    if (dir == nullptr) return names;
    while (dirent* ent = ::readdir(dir)) {
      const std::string name = ent->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(dir);
    return names;
  }

  /// Reset the directory to exactly `files` (name -> bytes).
  void Reset(const std::map<std::string, std::string>& files) {
    Clear();
    for (const auto& [name, bytes] : files) WriteBytes(File(name), bytes);
  }

 private:
  std::string path_;
};

/// Snapshot every file in `dir` (name -> bytes).
std::map<std::string, std::string> SnapshotDir(const ScratchDir& dir) {
  std::map<std::string, std::string> files;
  for (const std::string& name : dir.List()) {
    files[name] = FileBytes(dir.File(name));
  }
  return files;
}

/// Build a small chain: a full at record `first_full`, then one delta per
/// `step` records until `total`. Returns the expected text checkpoint at
/// every member boundary: expected[k] = state with members 0..k-1 applied
/// (expected[0] = fresh server).
std::vector<std::string> BuildChain(const World& w, ScratchDir& dir,
                                    std::size_t first_full, std::size_t step,
                                    std::size_t total,
                                    std::size_t compact_every = 64) {
  FleetServer writer = MakeServer(w);
  CheckpointChain chain(ChainConfig{dir.path(), compact_every});
  std::vector<std::string> expected;
  expected.push_back(TextCheckpoint(writer));  // nothing applied
  writer.Start();
  Feed(writer, w, 0, first_full);
  writer.Drain();
  ChainWriteResult result = chain.Write(writer);
  EXPECT_TRUE(result.full);
  expected.push_back(TextCheckpoint(writer));
  for (std::size_t at = first_full; at < total; at += step) {
    Feed(writer, w, at, at + step);
    writer.Drain();
    result = chain.Write(writer);
    EXPECT_FALSE(result.full);
    expected.push_back(TextCheckpoint(writer));
  }
  writer.Stop();
  return expected;
}

// --- write + compaction policy -------------------------------------------

TEST(ChainWrite, FullThenDeltasThenCompactionFold) {
  const World& w = SharedWorld();
  ScratchDir dir;
  FleetServer server = MakeServer(w);
  CheckpointChain chain(ChainConfig{dir.path(), /*compact_every=*/3});
  server.Start();

  Feed(server, w, 0, 20);
  server.Drain();
  ChainWriteResult result = chain.Write(server);
  EXPECT_TRUE(result.full);
  EXPECT_EQ(chain.epoch(), 1u);
  EXPECT_EQ(chain.chain_length(), 1u);
  EXPECT_TRUE(FileExists(dir.File("full-000001.ckpt")));
  EXPECT_TRUE(FileExists(dir.File(kManifestFileName)));
  EXPECT_EQ(server.DirtyBankCount(), 0u);

  for (std::size_t i = 1; i <= 3; ++i) {
    Feed(server, w, 20 * i, 20 * (i + 1));
    server.Drain();
    result = chain.Write(server);
    EXPECT_FALSE(result.full) << "delta " << i;
    EXPECT_EQ(chain.chain_length(), 1 + i);
  }
  EXPECT_TRUE(FileExists(dir.File("delta-000001.0003.ckpt")));

  // The 4th periodic write folds into a fresh full of a new epoch and
  // prunes the old generation.
  Feed(server, w, 80, 100);
  server.Drain();
  result = chain.Write(server);
  EXPECT_TRUE(result.full);
  EXPECT_EQ(chain.epoch(), 2u);
  EXPECT_EQ(chain.chain_length(), 1u);
  EXPECT_TRUE(FileExists(dir.File("full-000002.ckpt")));
  EXPECT_FALSE(FileExists(dir.File("full-000001.ckpt")));
  EXPECT_FALSE(FileExists(dir.File("delta-000001.0001.ckpt")));
  server.Stop();
}

TEST(ChainWrite, DeltaMembersAreSmallerThanFulls) {
  const World& w = SharedWorld();
  ScratchDir dir;
  BuildChain(w, dir, 60, 6, 90);
  const std::uint64_t full_bytes = FileBytes(dir.File("full-000001.ckpt")).size();
  const std::uint64_t delta_bytes =
      FileBytes(dir.File("delta-000001.0001.ckpt")).size();
  EXPECT_LT(delta_bytes, full_bytes);
}

// --- recovery: clean chains ----------------------------------------------

TEST(ChainRecovery, RestoresBitIdenticallyToUninterruptedReference) {
  const World& w = SharedWorld();
  ScratchDir dir;
  const std::vector<std::string> expected = BuildChain(w, dir, 24, 24, 120);

  FleetServer restored = MakeServer(w);
  CheckpointChain chain(ChainConfig{dir.path(), 64});
  const ChainRecoveryOutcome outcome = chain.Recover(restored);
  EXPECT_FALSE(outcome.fresh_start());
  EXPECT_FALSE(outcome.fell_back);
  EXPECT_TRUE(outcome.quarantined.empty());
  EXPECT_EQ(outcome.applied.size(), expected.size() - 1);
  EXPECT_EQ(TextCheckpoint(restored), expected.back());

  // A clean recovery keeps appending to the same chain.
  restored.Start();
  Feed(restored, w, 120, 144);
  restored.Drain();
  const ChainWriteResult next = chain.Write(restored);
  EXPECT_FALSE(next.full);
  restored.Stop();
}

TEST(ChainRecovery, ScanRescueRestoresChainWithoutManifest) {
  const World& w = SharedWorld();
  ScratchDir dir;
  const std::vector<std::string> expected = BuildChain(w, dir, 24, 24, 96);
  ::unlink(dir.File(kManifestFileName).c_str());
  ::unlink((dir.File(kManifestFileName) + ".prev").c_str());

  FleetServer restored = MakeServer(w);
  CheckpointChain chain(ChainConfig{dir.path(), 64});
  const ChainRecoveryOutcome outcome = chain.Recover(restored);
  EXPECT_FALSE(outcome.fresh_start());
  EXPECT_EQ(TextCheckpoint(restored), expected.back());

  // Without a manifest the chain is not appendable: the next write starts a
  // fresh epoch with a full.
  const ChainWriteResult next = chain.Write(restored);
  EXPECT_TRUE(next.full);
  EXPECT_EQ(chain.epoch(), 2u);
}

TEST(ChainRecovery, ManifestPrevFallbackDropsUnlistedTail) {
  const World& w = SharedWorld();
  ScratchDir dir;
  const std::vector<std::string> expected = BuildChain(w, dir, 24, 24, 96);
  // Garbage primary MANIFEST; the .prev (written before the last delta) is
  // intact and describes the chain minus its newest member.
  WriteBytes(dir.File(kManifestFileName), "not a manifest at all\n");

  FleetServer restored = MakeServer(w);
  CheckpointChain chain(ChainConfig{dir.path(), 64});
  const ChainRecoveryOutcome outcome = chain.Recover(restored);
  EXPECT_TRUE(outcome.fell_back);
  ASSERT_EQ(outcome.quarantined.size(), 1u);
  EXPECT_EQ(outcome.quarantined.front(), dir.File(kManifestFileName));
  EXPECT_FALSE(outcome.fresh_start());
  // State = one member short of the uninterrupted end.
  EXPECT_EQ(TextCheckpoint(restored), expected[expected.size() - 2]);
}

// --- recovery: corrupt members -------------------------------------------

TEST(ChainRecovery, CorruptMidChainDeltaIsQuarantinedByExactName) {
  const World& w = SharedWorld();
  ScratchDir dir;
  const std::vector<std::string> expected = BuildChain(w, dir, 24, 24, 120);
  ASSERT_GE(expected.size(), 4u);  // full + at least 3 deltas

  // Flip one byte in the middle of delta #2.
  const std::string victim_file = "delta-000001.0002.ckpt";
  std::string bytes = FileBytes(dir.File(victim_file));
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  WriteBytes(dir.File(victim_file), bytes);

  FleetServer restored = MakeServer(w);
  CheckpointChain chain(ChainConfig{dir.path(), 64});
  const ChainRecoveryOutcome outcome = chain.Recover(restored);
  EXPECT_TRUE(outcome.fell_back);
  // Exactly the damaged member is quarantined, named in full.
  ASSERT_EQ(outcome.quarantined.size(), 1u);
  EXPECT_EQ(outcome.quarantined.front(), dir.File(victim_file));
  ASSERT_EQ(outcome.errors.size(), 1u);
  EXPECT_NE(outcome.errors.front().find(victim_file), std::string::npos);
  EXPECT_TRUE(FileExists(dir.File(victim_file) + ".corrupt"));
  EXPECT_FALSE(FileExists(dir.File(victim_file)));
  // State fails closed to the newest intact prefix: full + delta 1.
  EXPECT_EQ(outcome.applied.size(), 2u);
  EXPECT_EQ(TextCheckpoint(restored), expected[2]);
  // The intact tail member after the break is dropped, not applied.
  EXPECT_TRUE(FileExists(dir.File("delta-000001.0003.ckpt")));

  // A damaged chain is never extended: the next write is a fresh full.
  const ChainWriteResult next = chain.Write(restored);
  EXPECT_TRUE(next.full);
  EXPECT_EQ(chain.epoch(), 2u);
}

TEST(ChainTorture, EveryTruncationAndBitFlipFailsClosedToIntactPrefix) {
  const World& w = SharedWorld();
  ScratchDir dir;
  // Tiny state on purpose: the loops below run a full directory recovery
  // per mangled byte/bit.
  const std::vector<std::string> expected = BuildChain(w, dir, 8, 4, 16);
  ASSERT_EQ(expected.size(), 4u);  // fresh, full, +delta1, +delta2
  const std::map<std::string, std::string> pristine = SnapshotDir(dir);

  const std::vector<std::string> members = {
      "full-000001.ckpt", "delta-000001.0001.ckpt", "delta-000001.0002.ckpt"};
  std::size_t chain_bytes = 0;
  for (const std::string& member : members) {
    chain_bytes += pristine.at(member).size();
  }
  ASSERT_LT(chain_bytes, 24u * 1024)
      << "chain grew too large for the O(bytes) recovery torture loops";

  FleetServer victim = MakeServer(w);
  CheckpointChain chain(ChainConfig{dir.path(), 64});
  std::size_t iterations = 0;

  const auto check_recovery = [&](std::size_t damaged_index,
                                  const std::string& detail) {
    const ChainRecoveryOutcome outcome = chain.Recover(victim);
    // Recovery stands at the newest intact prefix: every member before the
    // damaged one applied, nothing at or after it.
    EXPECT_EQ(outcome.applied.size(), damaged_index) << detail;
    EXPECT_TRUE(outcome.fell_back) << detail;
    if (damaged_index > 0) {
      // Sampled state check — byte-identical to the uninterrupted
      // reference at that prefix (every iteration would square the cost).
      if (iterations % 41 == 0) {
        EXPECT_EQ(TextCheckpoint(victim), expected[damaged_index]) << detail;
      }
    }
    ++iterations;
  };

  for (std::size_t m = 0; m < members.size(); ++m) {
    const std::string& member = members[m];
    const std::string& bytes = pristine.at(member);
    // Every byte-prefix truncation of this member...
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      auto files = pristine;
      files[member] = bytes.substr(0, len);
      dir.Reset(files);
      check_recovery(m, member + " truncated to " + std::to_string(len) +
                            " bytes");
    }
    // ...and a single-bit flip at every byte position (the bit lane rotates
    // with the position so all eight lanes are exercised; each corruption
    // forces a full directory recovery, which is why this is per-byte
    // rather than the 8x per-bit loop the in-memory torture runs).
    for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
      auto files = pristine;
      files[member][byte] =
          static_cast<char>(files[member][byte] ^ (1 << (byte % 8)));
      dir.Reset(files);
      check_recovery(m, member + " byte " + std::to_string(byte) + " bit " +
                            std::to_string(byte % 8));
    }
  }

  // The pristine chain still recovers in full afterwards.
  dir.Reset(pristine);
  const ChainRecoveryOutcome outcome = chain.Recover(victim);
  EXPECT_FALSE(outcome.fell_back);
  EXPECT_EQ(TextCheckpoint(victim), expected.back());
}

// --- failed writes --------------------------------------------------------

TEST(ChainWrite, FailedDeltaWriteLeavesChainAndDirtySetIntact) {
  const World& w = SharedWorld();
  ScratchDir dir;
  FleetServer server = MakeServer(w);
  CheckpointChain chain(ChainConfig{dir.path(), 64});
  server.Start();
  Feed(server, w, 0, 30);
  server.Drain();
  ASSERT_TRUE(chain.Write(server).full);

  Feed(server, w, 30, 60);
  server.Drain();
  const std::size_t dirty_before = server.DirtyBankCount();
  ASSERT_GT(dirty_before, 0u);
  const std::map<std::string, std::string> disk_before = SnapshotDir(dir);

  // An fsync failure mid-delta must not lose dirty banks or touch the
  // chain: the failed member's tmp file is cleaned up, the manifest still
  // describes the old chain.
  failpoint::Arm("serve.checkpoint.fsync");
  EXPECT_THROW(chain.Write(server), ContractViolation);
  failpoint::DisarmAll();
  EXPECT_EQ(server.DirtyBankCount(), dirty_before);
  EXPECT_EQ(SnapshotDir(dir), disk_before);

  // The prior full must never be orphaned or shadowed by the failed delta:
  // a cold recovery still lands on it.
  FleetServer probe = MakeServer(w);
  CheckpointChain probe_chain(ChainConfig{dir.path(), 64});
  EXPECT_FALSE(probe_chain.Recover(probe).fell_back);

  // The retry succeeds and writes the same banks.
  const ChainWriteResult retry = chain.Write(server);
  EXPECT_FALSE(retry.full);
  EXPECT_EQ(retry.banks_written, dirty_before);
  EXPECT_EQ(server.DirtyBankCount(), 0u);
  server.Stop();
}

TEST(ChainWrite, FailedManifestWriteKeepsPreviousManifestRestorable) {
  const World& w = SharedWorld();
  ScratchDir dir;
  FleetServer server = MakeServer(w);
  CheckpointChain chain(ChainConfig{dir.path(), 64});
  server.Start();
  Feed(server, w, 0, 30);
  server.Drain();
  ASSERT_TRUE(chain.Write(server).full);
  const std::string state_after_full = TextCheckpoint(server);

  Feed(server, w, 30, 60);
  server.Drain();
  // Fail the SECOND durable write of the cycle (the manifest): the member
  // lands on disk but stays unlisted, and the dirty set is kept.
  const std::size_t dirty_before = server.DirtyBankCount();
  failpoint::Arm("serve.checkpoint.rename", /*skip=*/1);
  EXPECT_THROW(chain.Write(server), ContractViolation);
  failpoint::DisarmAll();
  EXPECT_EQ(server.DirtyBankCount(), dirty_before);

  // Cold recovery sees the old manifest: full only, no half-added delta.
  FleetServer probe = MakeServer(w);
  CheckpointChain probe_chain(ChainConfig{dir.path(), 64});
  const ChainRecoveryOutcome outcome = probe_chain.Recover(probe);
  EXPECT_EQ(outcome.applied.size(), 1u);
  EXPECT_EQ(TextCheckpoint(probe), state_after_full);

  // The retry overwrites the unlisted member and completes the cycle.
  const ChainWriteResult retry = chain.Write(server);
  EXPECT_FALSE(retry.full);
  EXPECT_EQ(server.DirtyBankCount(), 0u);
  server.Stop();
}

// --- offline fold / inspector --------------------------------------------

TEST(ChainFold, OfflineFoldIsByteIdenticalToLiveBinaryFull) {
  const World& w = SharedWorld();
  ScratchDir dir;

  // Build the chain while tracking the uninterrupted reference state.
  FleetServer writer = MakeServer(w);
  CheckpointChain chain(ChainConfig{dir.path(), 64});
  writer.Start();
  Feed(writer, w, 0, 40);
  writer.Drain();
  chain.Write(writer);
  for (std::size_t at = 40; at < 120; at += 20) {
    Feed(writer, w, at, at + 20);
    writer.Drain();
    chain.Write(writer);
  }
  writer.Stop();
  const std::string live_full = BinaryCheckpoint(writer);

  // The model-free structural fold reproduces the live binary full save
  // byte for byte.
  EXPECT_EQ(FoldChain(dir.path()), live_full);

  // On-disk compaction folds to a new epoch whose recovery matches too.
  const ChainWriteResult compacted = CompactChainFiles(dir.path());
  EXPECT_TRUE(compacted.full);
  EXPECT_EQ(compacted.chain_length, 1u);
  EXPECT_EQ(FileBytes(compacted.file), live_full);
  EXPECT_FALSE(FileExists(dir.File("full-000001.ckpt")));

  FleetServer restored = MakeServer(w);
  CheckpointChain recovered(ChainConfig{dir.path(), 64});
  EXPECT_FALSE(recovered.Recover(restored).fresh_start());
  EXPECT_EQ(BinaryCheckpoint(restored), live_full);
}

TEST(ChainInspect, ReportsSoundChainsAndNamesCorruptMembers) {
  const World& w = SharedWorld();
  ScratchDir dir;
  BuildChain(w, dir, 24, 24, 72);

  ChainInspection report = InspectChain(dir.path());
  ASSERT_TRUE(report.has_manifest);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.members.size(), 3u);
  for (const MemberInfo& info : report.members) {
    EXPECT_TRUE(info.crc_ok) << info.entry.file;
    EXPECT_EQ(info.shard_count, kShardCount) << info.entry.file;
    EXPECT_TRUE(info.error.empty()) << info.entry.file;
  }

  // Flip a byte in one member: the report stays usable and pins the blame.
  const std::string victim_file = "delta-000001.0001.ckpt";
  std::string bytes = FileBytes(dir.File(victim_file));
  bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x01);
  WriteBytes(dir.File(victim_file), bytes);
  report = InspectChain(dir.path());
  EXPECT_FALSE(report.ok());
  for (const MemberInfo& info : report.members) {
    if (info.entry.file == victim_file) {
      EXPECT_FALSE(info.crc_ok);
      EXPECT_FALSE(info.error.empty());
    } else {
      EXPECT_TRUE(info.error.empty()) << info.entry.file;
    }
  }
  // A corrupt member also fails the fold loudly, naming the member.
  try {
    FoldChain(dir.path());
    FAIL() << "fold accepted a corrupt member";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(victim_file), std::string::npos);
  }
}

// --- manifest codec -------------------------------------------------------

TEST(ChainManifest, CodecRoundTripsAndValidatesShape) {
  Manifest manifest;
  manifest.epoch = 7;
  ChainEntry full;
  full.is_full = true;
  full.epoch = 7;
  full.seq = 0;
  full.file = "full-000007.ckpt";
  full.bytes = 123456;
  full.crc32 = 0xDEADBEEFu;
  manifest.entries.push_back(full);
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    ChainEntry delta;
    delta.is_full = false;
    delta.epoch = 7;
    delta.seq = seq;
    delta.file = "delta-000007.000" + std::to_string(seq) + ".ckpt";
    delta.bytes = 100 + seq;
    delta.crc32 = static_cast<std::uint32_t>(seq);
    manifest.entries.push_back(delta);
  }

  std::istringstream in(EncodeManifest(manifest));
  const Manifest decoded = DecodeManifest(in);
  EXPECT_EQ(decoded.epoch, manifest.epoch);
  ASSERT_EQ(decoded.entries.size(), manifest.entries.size());
  for (std::size_t i = 0; i < decoded.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].is_full, manifest.entries[i].is_full);
    EXPECT_EQ(decoded.entries[i].seq, manifest.entries[i].seq);
    EXPECT_EQ(decoded.entries[i].file, manifest.entries[i].file);
    EXPECT_EQ(decoded.entries[i].bytes, manifest.entries[i].bytes);
    EXPECT_EQ(decoded.entries[i].crc32, manifest.entries[i].crc32);
  }

  // A chain that does not start with a full is malformed.
  Manifest headless = manifest;
  headless.entries.erase(headless.entries.begin());
  std::istringstream headless_in(EncodeManifest(headless));
  EXPECT_THROW(DecodeManifest(headless_in), ParseError);

  // A gap in the delta sequence is malformed.
  Manifest gapped = manifest;
  gapped.entries.back().seq = 5;
  std::istringstream gapped_in(EncodeManifest(gapped));
  EXPECT_THROW(DecodeManifest(gapped_in), ParseError);

  // A member from another epoch is malformed.
  Manifest crossed = manifest;
  crossed.entries.back().epoch = 8;
  std::istringstream crossed_in(EncodeManifest(crossed));
  EXPECT_THROW(DecodeManifest(crossed_in), ParseError);
}

}  // namespace
}  // namespace cordial::persist
