// Binary state codec: the fixed-width payload behind engine-state frame v2
// and delta frames must be a lossless re-encoding of the text codec — a
// server restored from a binary save is bit-identical (as judged by its
// text checkpoint, the format every older pin compares) to one restored
// from the text save, at every prefix of a replayed trace, including
// non-finite doubles and empty/saturated bank profiles. Plus the dirty-bank
// tracking contract delta checkpoints are built on.
#include "persist/binary_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/bank_profile.hpp"
#include "serve/fleet_server.hpp"
#include "support/serve_world.hpp"

namespace cordial::persist {
namespace {

using serve::FleetServer;
using serve::test_support::SharedWorld;
using serve::test_support::World;

constexpr std::size_t kShardCount = 2;

FleetServer MakeServer(const World& w,
                       core::EngineConfig engine = core::EngineConfig{}) {
  serve::FleetServerConfig config;
  config.shard_count = kShardCount;
  config.engine = engine;
  return FleetServer(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
}

/// Feed records [begin, end) and leave the server drained.
void Feed(FleetServer& server, const World& w, std::size_t begin,
          std::size_t end) {
  const auto& records = w.fleet.log.records();
  for (std::size_t i = begin; i < std::min(end, records.size()); ++i) {
    server.Submit(records[i]);
  }
  server.Drain();
}

std::string TextCheckpoint(const FleetServer& server) {
  std::ostringstream out;
  server.SaveCheckpoint(out, core::StateEncoding::kText);
  return out.str();
}

std::string BinaryCheckpoint(const FleetServer& server) {
  std::ostringstream out;
  server.SaveCheckpoint(out, core::StateEncoding::kBinary);
  return out.str();
}

void Restore(FleetServer& server, const std::string& bytes) {
  std::istringstream in(bytes);
  server.RestoreCheckpoint(in);
}

// --- primitives -----------------------------------------------------------

TEST(PersistBinaryPrimitives, FixedWidthFieldsRoundTripBitExactly) {
  std::string buffer;
  BinaryWriter writer(buffer);
  writer.U8(0);
  writer.U8(0xFF);
  writer.U32(0);
  writer.U32(0xDEADBEEFu);
  writer.U64(0);
  writer.U64(~0ull);
  writer.I64(-1);
  writer.I64(std::numeric_limits<std::int64_t>::min());

  // Doubles must round-trip as raw bit patterns: quiet/signalling NaNs with
  // payloads, both infinities, negative zero, denormals.
  const std::uint64_t double_bits[] = {
      0x0000000000000000ull,  // +0.0
      0x8000000000000000ull,  // -0.0
      0x7FF0000000000000ull,  // +inf
      0xFFF0000000000000ull,  // -inf
      0x7FF8000000000000ull,  // quiet NaN
      0xFFF8DEADBEEF0001ull,  // negative NaN with payload
      0x7FF0000000000001ull,  // signalling NaN
      0x0000000000000001ull,  // smallest denormal
      0x3FF0000000000000ull,  // 1.0
  };
  for (const std::uint64_t bits : double_bits) {
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof value);
    writer.F64(value);
  }
  writer.Bytes("payload");

  BinaryReader reader(buffer, "test");
  EXPECT_EQ(reader.U8(), 0u);
  EXPECT_EQ(reader.U8(), 0xFFu);
  EXPECT_EQ(reader.U32(), 0u);
  EXPECT_EQ(reader.U32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.U64(), 0u);
  EXPECT_EQ(reader.U64(), ~0ull);
  EXPECT_EQ(reader.I64(), -1);
  EXPECT_EQ(reader.I64(), std::numeric_limits<std::int64_t>::min());
  for (const std::uint64_t bits : double_bits) {
    const double value = reader.F64();
    std::uint64_t read_bits = 0;
    std::memcpy(&read_bits, &value, sizeof read_bits);
    EXPECT_EQ(read_bits, bits);
  }
  EXPECT_EQ(reader.Bytes(7), "payload");
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_NO_THROW(reader.ExpectEnd());
}

TEST(PersistBinaryPrimitives, TruncationAndBadCountsFailClosed) {
  std::string buffer;
  BinaryWriter writer(buffer);
  writer.U32(7);
  BinaryReader short_read(buffer, "test");
  EXPECT_THROW(short_read.U64(), ParseError);

  // An element count that cannot fit in the remaining payload is rejected
  // before any allocation.
  std::string counted;
  BinaryWriter counted_writer(counted);
  counted_writer.U64(1u << 20);
  BinaryReader count_reader(counted, "test");
  EXPECT_THROW(count_reader.Count(8), ParseError);

  // Trailing bytes after the last field are an error, not ignored.
  BinaryReader trailing(buffer, "test");
  EXPECT_THROW(trailing.ExpectEnd(), ParseError);
}

// --- BankProfile binary codec --------------------------------------------

trace::MceRecord Make(double t, std::uint32_t row, hbm::ErrorType type) {
  trace::MceRecord r;
  r.time_s = t;
  r.address.row = row;
  r.type = type;
  return r;
}

std::string ProfileText(const core::BankProfile& profile) {
  std::ostringstream out;
  profile.Save(out);
  return out.str();
}

core::BankProfile BinaryRoundTrip(const core::BankProfile& profile) {
  std::string bytes;
  BinaryWriter writer(bytes);
  profile.SaveBinary(writer);
  BinaryReader reader(bytes, "profile round-trip");
  core::BankProfile loaded = core::BankProfile::LoadBinary(reader);
  reader.ExpectEnd();
  return loaded;
}

TEST(PersistBinaryCodec, EmptyProfileRoundTripsThroughBinary) {
  const core::BankProfile empty(3);
  EXPECT_EQ(ProfileText(BinaryRoundTrip(empty)), ProfileText(empty));
}

TEST(PersistBinaryCodec, SaturatedProfileRoundTripsThroughBinary) {
  // max_uers=1 caps the classification view immediately; keep observing past
  // the cap so the capped/frozen split is exercised too.
  core::BankProfile profile(1);
  profile.Observe(Make(1.0, 10, hbm::ErrorType::kCe));
  profile.Observe(Make(2.0, 11, hbm::ErrorType::kUeo));
  profile.Observe(Make(3.0, 12, hbm::ErrorType::kUer));
  profile.Observe(Make(4.0, 13, hbm::ErrorType::kUer));
  profile.Observe(Make(5.0, 14, hbm::ErrorType::kCe));
  ASSERT_TRUE(profile.HasClassificationView());

  core::BankProfile loaded = BinaryRoundTrip(profile);
  EXPECT_EQ(ProfileText(loaded), ProfileText(profile));

  // The restored profile keeps absorbing events bit-identically.
  core::BankProfile original = profile;
  original.Observe(Make(6.0, 15, hbm::ErrorType::kUer));
  loaded.Observe(Make(6.0, 15, hbm::ErrorType::kUer));
  EXPECT_EQ(ProfileText(loaded), ProfileText(original));
}

// --- engine-state equivalence --------------------------------------------

TEST(PersistBinaryCodec, BinaryAndTextRestoreBitIdenticallyAtEveryPrefix) {
  const World& w = SharedWorld();
  FleetServer donor = MakeServer(w);
  FleetServer from_binary = MakeServer(w);
  FleetServer from_text = MakeServer(w);
  donor.Start();

  const std::size_t total =
      std::min<std::size_t>(w.fleet.log.records().size(), 160);
  for (std::size_t prefix = 0; prefix <= total; ++prefix) {
    if (prefix > 0) Feed(donor, w, prefix - 1, prefix);
    const std::string text = TextCheckpoint(donor);
    const std::string binary = BinaryCheckpoint(donor);

    // Binary restore reproduces the exact text state, and vice versa.
    Restore(from_binary, binary);
    EXPECT_EQ(TextCheckpoint(from_binary), text) << "prefix " << prefix;
    Restore(from_text, text);
    EXPECT_EQ(BinaryCheckpoint(from_text), binary) << "prefix " << prefix;
  }
  donor.Stop();
}

TEST(PersistBinaryCodec, RestoredServerContinuesBitIdentically) {
  const World& w = SharedWorld();
  FleetServer donor = MakeServer(w);
  donor.Start();
  Feed(donor, w, 0, 80);

  FleetServer restored = MakeServer(w);
  Restore(restored, BinaryCheckpoint(donor));
  restored.Start();
  Feed(donor, w, 80, 160);
  Feed(restored, w, 80, 160);
  donor.Stop();
  restored.Stop();
  EXPECT_EQ(TextCheckpoint(restored), TextCheckpoint(donor));
  EXPECT_EQ(BinaryCheckpoint(restored), BinaryCheckpoint(donor));
}

TEST(PersistBinaryCodec, NonFiniteBudgetCostsSurviveBinaryRoundTrip) {
  const World& w = SharedWorld();
  core::EngineConfig engine;
  engine.budget.row_spare_cost = std::numeric_limits<double>::infinity();
  engine.budget.bank_spare_cost = std::numeric_limits<double>::quiet_NaN();
  FleetServer donor = MakeServer(w, engine);
  donor.Start();
  Feed(donor, w, 0, 120);
  donor.Stop();

  const std::string text = TextCheckpoint(donor);
  const std::string binary = BinaryCheckpoint(donor);
  FleetServer restored = MakeServer(w, engine);
  Restore(restored, binary);
  EXPECT_EQ(TextCheckpoint(restored), text);
  EXPECT_EQ(BinaryCheckpoint(restored), binary);
}

// --- dirty tracking + delta equivalence -----------------------------------

TEST(PersistDelta, DirtyTrackingFollowsObserveAndClean) {
  const World& w = SharedWorld();
  FleetServer server = MakeServer(w);
  EXPECT_EQ(server.DirtyBankCount(), 0u);
  server.Start();
  Feed(server, w, 0, 40);

  const std::size_t dirty = server.DirtyBankCount();
  EXPECT_GT(dirty, 0u);
  EXPECT_LE(dirty, server.TotalBankCount());

  // Serializing a delta does NOT clear the dirty set (the bytes are not
  // durable yet); it writes exactly the dirty banks.
  std::ostringstream delta;
  EXPECT_EQ(server.SaveDeltaCheckpoint(delta), dirty);
  EXPECT_EQ(server.DirtyBankCount(), dirty);

  server.MarkCheckpointClean();
  EXPECT_EQ(server.DirtyBankCount(), 0u);
  std::ostringstream empty_delta;
  EXPECT_EQ(server.SaveDeltaCheckpoint(empty_delta), 0u);

  // New observations dirty banks again; re-touching the same banks does not
  // double-count.
  Feed(server, w, 40, 80);
  const std::size_t redirtied = server.DirtyBankCount();
  EXPECT_GT(redirtied, 0u);
  EXPECT_LE(redirtied, server.TotalBankCount());
  server.Stop();
}

TEST(PersistDelta, FullPlusDeltasRestoreBitIdenticallyToUninterrupted) {
  const World& w = SharedWorld();
  constexpr std::size_t kEvery = 24;
  constexpr std::size_t kTotal = 144;

  FleetServer donor = MakeServer(w);
  donor.Start();
  Feed(donor, w, 0, kEvery);
  const std::string full = BinaryCheckpoint(donor);
  donor.MarkCheckpointClean();

  std::vector<std::string> deltas;
  for (std::size_t at = kEvery; at < kTotal; at += kEvery) {
    Feed(donor, w, at, at + kEvery);
    std::ostringstream out;
    donor.SaveDeltaCheckpoint(out);
    donor.MarkCheckpointClean();
    deltas.push_back(out.str());
  }
  donor.Stop();

  // full + deltas == the uninterrupted server, bit for bit.
  FleetServer follower = MakeServer(w);
  Restore(follower, full);
  for (const std::string& delta : deltas) {
    std::istringstream in(delta);
    follower.ApplyDeltaCheckpoint(in);
  }
  EXPECT_EQ(TextCheckpoint(follower), TextCheckpoint(donor));
  EXPECT_EQ(BinaryCheckpoint(follower), BinaryCheckpoint(donor));

  // ...and keeps consuming the feed bit-identically afterwards.
  FleetServer reference = MakeServer(w);
  Restore(reference, BinaryCheckpoint(donor));
  follower.Start();
  reference.Start();
  Feed(follower, w, kTotal, kTotal + 40);
  Feed(reference, w, kTotal, kTotal + 40);
  follower.Stop();
  reference.Stop();
  EXPECT_EQ(TextCheckpoint(follower), TextCheckpoint(reference));
}

TEST(PersistDelta, EmptyDeltaIsAnExactNoOp) {
  const World& w = SharedWorld();
  FleetServer server = MakeServer(w);
  server.Start();
  Feed(server, w, 0, 50);
  server.Stop();
  server.MarkCheckpointClean();

  std::ostringstream out;
  ASSERT_EQ(server.SaveDeltaCheckpoint(out), 0u);
  const std::string before = TextCheckpoint(server);
  std::istringstream in(out.str());
  server.ApplyDeltaCheckpoint(in);
  EXPECT_EQ(TextCheckpoint(server), before);
}

TEST(PersistDelta, DeltaWithWrongShardCountIsRejected) {
  const World& w = SharedWorld();
  FleetServer donor = MakeServer(w);
  donor.Start();
  Feed(donor, w, 0, 30);
  donor.Stop();
  std::ostringstream out;
  donor.SaveDeltaCheckpoint(out);

  serve::FleetServerConfig config;
  config.shard_count = kShardCount + 1;
  FleetServer other(w.topology, w.classifier, w.single_pred, w.double_or_null(),
                    config);
  std::istringstream in(out.str());
  EXPECT_THROW(other.ApplyDeltaCheckpoint(in), ParseError);
}

}  // namespace
}  // namespace cordial::persist
