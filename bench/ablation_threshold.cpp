// Ablation A3: the block-positive decision threshold trades precision
// against recall and sparing cost. Sweeps the operating point for
// Cordial-RF.
#include "bench_common.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  auto args = bench::BenchArgs::Parse(argc, argv);
  if (argc <= 1) args.scale = 0.5;
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Ablation A3: block decision threshold", args, fleet);

  TextTable table({"Threshold", "Precision", "Recall", "F1", "ICR",
                   "Rows Spared", "Cost"});
  for (double threshold : {0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50}) {
    core::PipelineConfig config;
    config.learner = ml::LearnerKind::kRandomForest;
    config.crossrow.positive_threshold = threshold;
    core::CordialPipeline pipeline(fleet.topology, config);
    std::cerr << "threshold " << threshold << "...\n";
    const auto result = pipeline.Run(fleet, args.seed + 3);
    const auto& c = result.cordial;
    table.AddRow({TextTable::FormatDouble(threshold, 2),
                  TextTable::FormatDouble(c.block_metrics.precision),
                  TextTable::FormatDouble(c.block_metrics.recall),
                  TextTable::FormatDouble(c.block_metrics.f1),
                  TextTable::FormatPercent(c.icr.Icr()),
                  std::to_string(c.icr.rows_spared),
                  TextTable::FormatDouble(c.icr.sparing_cost, 0)});
  }
  std::cout << table.Render("Cordial-RF across decision thresholds");
  std::cout << "\nexpected shape: precision rises and recall/ICR fall with\n"
               "the threshold; the default (0.25) sits near the F1 knee.\n";
  return 0;
}
