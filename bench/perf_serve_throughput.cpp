// Serving-layer throughput benchmark (records/sec).
//
// One fleet stream, one set of trained models, three consumption paths:
//
//   * EngineDirect   — PredictionEngine::Observe on the caller thread; the
//                      no-queue baseline every serving configuration pays
//                      against.
//   * FleetServer/N  — serve::FleetServer with N shards: one producer
//                      submitting the stream, N workers running the engines.
//                      N=1 prices the queue hop; N>1 shows the sharding win.
//
// Queue capacity is set high enough that the producer never blocks, so the
// measured wall time is max(producer, slowest shard) — the steady-state
// regime a daemon runs in. Results go to BENCH_serve.json (google-benchmark
// JSON) unless the caller passes an explicit --benchmark_out. Acceptance:
// multi-shard records/sec beats the 1-shard server.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/rng.hpp"
#include "serve/fleet_server.hpp"
#include "trace/fleet.hpp"

namespace {

using namespace cordial;

/// UER banks padded with CE background to deployment-like event densities
/// (same construction as perf_engine_throughput).
trace::BankHistory Densify(const trace::BankHistory& bank,
                           std::size_t target_events, std::uint32_t rows,
                           Rng& rng) {
  trace::BankHistory dense = bank;
  const double horizon = bank.events.back().time_s;
  while (dense.events.size() < target_events) {
    trace::MceRecord ce = bank.events[rng.UniformU64(bank.events.size())];
    ce.type = hbm::ErrorType::kCe;
    ce.time_s = rng.UniformReal(0.0, horizon);
    const std::int64_t jittered =
        static_cast<std::int64_t>(ce.address.row) + rng.UniformInt(-64, 64);
    ce.address.row = static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(jittered, 0, rows - 1));
    dense.events.push_back(ce);
  }
  std::stable_sort(dense.events.begin(), dense.events.end(),
                   [](const trace::MceRecord& a, const trace::MceRecord& b) {
                     return a.time_s < b.time_s;
                   });
  return dense;
}

struct BenchWorld {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  std::vector<trace::MceRecord> stream;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;

  BenchWorld()
      : fleet([] {
          hbm::TopologyConfig topology;
          trace::CalibrationProfile profile;
          profile.scale = 0.1;
          return trace::FleetGenerator(topology, profile).Generate(123);
        }()),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    const auto banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    std::vector<trace::BankHistory> dense_banks;
    Rng dense_rng(31);
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      dense_banks.push_back(
          Densify(bank, 1000, topology.rows_per_bank, dense_rng));
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    for (const trace::BankHistory& bank : dense_banks) {
      stream.insert(stream.end(), bank.events.begin(), bank.events.end());
    }
    std::stable_sort(stream.begin(), stream.end(),
                     [](const trace::MceRecord& a, const trace::MceRecord& b) {
                       return a.time_s < b.time_s;
                     });
    Rng rng(7);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
  }

  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }
};

const BenchWorld& World() {
  static const BenchWorld* world = new BenchWorld();
  return *world;
}

void BM_EngineDirect(benchmark::State& state) {
  const BenchWorld& w = World();
  for (auto _ : state) {
    core::PredictionEngine engine(w.topology, w.classifier, w.single_pred,
                                  w.double_or_null());
    for (const trace::MceRecord& record : w.stream) engine.Observe(record);
    benchmark::DoNotOptimize(engine.stats().uer_rows_covered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.stream.size()));
}
BENCHMARK(BM_EngineDirect)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FleetServer(benchmark::State& state) {
  const BenchWorld& w = World();
  serve::FleetServerConfig config;
  config.shard_count = static_cast<std::size_t>(state.range(0));
  // Deep queues keep the single producer from ever blocking: the run
  // measures engine work, not backpressure.
  config.queue.capacity = w.stream.size() + 1;
  for (auto _ : state) {
    serve::FleetServer server(w.topology, w.classifier, w.single_pred,
                              w.double_or_null(), config);
    server.Start();
    for (const trace::MceRecord& record : w.stream) server.Submit(record);
    server.Stop();
    benchmark::DoNotOptimize(server.AggregateStats().uer_rows_covered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.stream.size()));
}
BENCHMARK(BM_FleetServer)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_serve.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
