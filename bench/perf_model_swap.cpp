// Model hot-swap overhead gate (records/sec).
//
// Online refresh puts one relaxed atomic version poll on every Observe and
// a mutex-guarded shared_ptr reload on each adoption. This benchmark prices
// that against the fixed-model path by driving one fleet stream through two
// FleetServers that differ only in FleetServerConfig::model_slot:
//
//   * baseline — model_slot=nullptr: the pre-refresh serving hot path.
//   * swapping — a ModelSlot attached, with the producer republishing the
//                same champion ModelSet every --publish-every records — far
//                more churn than any real trainer produces (identical bits,
//                so the measured work stays identical, and every publish is
//                a full version-poll + per-shard adoption cycle).
//
// Publishing from the producer keeps the thread count equal on both sides:
// a timer thread would oversubscribe small CI machines and bill scheduler
// preemption to the swap path (on a 1-core container that reads as ~8%).
//
// Repetitions interleave the two configurations (A B B A ...) so thermal
// and scheduler drift hits both equally, and each side keeps its best run.
// Queue capacity exceeds the stream so wall time is engine work, not
// backpressure.
//
// Emits BENCH_swap.json and exits non-zero when the swapping path is more
// than --threshold percent (default 5) slower than baseline — tier-1 runs
// this, so a slow poll or a lock on the per-record path cannot land
// silently.
//
// Usage: perf_model_swap [--reps N] [--passes N] [--shards N]
//                        [--publish-every N] [--threshold PCT]
//                        [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/rng.hpp"
#include "core/model_slot.hpp"
#include "serve/fleet_server.hpp"
#include "trace/fleet.hpp"

namespace {

using namespace cordial;

/// UER banks padded with CE background to deployment-like event densities
/// (same construction as perf_serve_throughput).
trace::BankHistory Densify(const trace::BankHistory& bank,
                           std::size_t target_events, std::uint32_t rows,
                           Rng& rng) {
  trace::BankHistory dense = bank;
  const double horizon = bank.events.back().time_s;
  while (dense.events.size() < target_events) {
    trace::MceRecord ce = bank.events[rng.UniformU64(bank.events.size())];
    ce.type = hbm::ErrorType::kCe;
    ce.time_s = rng.UniformReal(0.0, horizon);
    const std::int64_t jittered =
        static_cast<std::int64_t>(ce.address.row) + rng.UniformInt(-64, 64);
    ce.address.row = static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(jittered, 0, rows - 1));
    dense.events.push_back(ce);
  }
  std::stable_sort(dense.events.begin(), dense.events.end(),
                   [](const trace::MceRecord& a, const trace::MceRecord& b) {
                     return a.time_s < b.time_s;
                   });
  return dense;
}

struct BenchWorld {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  std::vector<trace::MceRecord> stream;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;

  BenchWorld()
      : fleet([] {
          hbm::TopologyConfig topology;
          trace::CalibrationProfile profile;
          profile.scale = 0.08;
          return trace::FleetGenerator(topology, profile).Generate(123);
        }()),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    const auto banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    std::vector<trace::BankHistory> dense_banks;
    Rng dense_rng(31);
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      dense_banks.push_back(
          Densify(bank, 1000, topology.rows_per_bank, dense_rng));
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    for (const trace::BankHistory& bank : dense_banks) {
      stream.insert(stream.end(), bank.events.begin(), bank.events.end());
    }
    std::stable_sort(stream.begin(), stream.end(),
                     [](const trace::MceRecord& a, const trace::MceRecord& b) {
                       return a.time_s < b.time_s;
                     });
    Rng rng(7);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
  }

  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }

  core::ModelSet ChampionSet() const {
    core::ModelSet set;
    set.classifier = core::UnownedModel(classifier);
    set.single = core::UnownedModel(single_pred);
    if (double_ok) set.double_row = core::UnownedModel(double_pred);
    return set;
  }
};

/// One measurement: `passes` time-shifted replays of the stream through a
/// fresh server; returns records/sec. The work is deterministic and
/// identical for both configurations — `with_slot` only attaches a slot
/// into which the producer republishes the same bits every
/// `publish_every` records.
double RunOnce(const BenchWorld& w, std::size_t shards, std::size_t passes,
               bool with_slot, std::size_t publish_every,
               std::uint64_t* publishes_out = nullptr) {
  core::ModelSlot slot(w.ChampionSet());
  serve::FleetServerConfig config;
  config.shard_count = shards;
  config.queue.capacity = w.stream.size() * passes + 1;
  if (with_slot) config.model_slot = &slot;
  serve::FleetServer server(w.topology, w.classifier, w.single_pred,
                            w.double_or_null(), config);

  // Each pass shifts times forward by the stream's span so records stay in
  // non-decreasing time order across passes.
  const double span = w.stream.back().time_s + 1.0;
  std::uint64_t publishes = 0;
  std::size_t since_publish = 0;
  server.Start();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t pass = 0; pass < passes; ++pass) {
    const double offset = static_cast<double>(pass) * span;
    for (trace::MceRecord record : w.stream) {
      record.time_s += offset;
      server.Submit(record);
      if (with_slot && ++since_publish >= publish_every) {
        since_publish = 0;
        slot.Publish(w.ChampionSet());
        ++publishes;
      }
    }
  }
  server.Drain();
  const auto end = std::chrono::steady_clock::now();
  server.Stop();
  if (publishes_out != nullptr) *publishes_out = publishes;

  const double seconds = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(w.stream.size() * passes) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  // Best-of over interleaved reps, same rationale as perf_obs_overhead: the
  // true cost is a relaxed load per record (~nothing), but container noise
  // jitters single runs far more than the threshold.
  std::size_t reps = 8;
  std::size_t passes = 4;
  std::size_t shards = 4;
  std::size_t publish_every = 5000;
  double threshold_pct = 5.0;
  std::string out_path = "BENCH_swap.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--reps") {
      reps = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--passes") {
      passes = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--shards") {
      shards = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--publish-every") {
      publish_every =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--threshold") {
      threshold_pct = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (reps == 0 || shards == 0 || passes == 0 || publish_every == 0) {
    std::cerr << "--reps, --passes, --shards and --publish-every must be "
                 ">= 1\n";
    return 2;
  }

  const BenchWorld world;
  std::cout << "stream: " << world.stream.size() << " records x " << passes
            << " pass(es), " << shards << " shard(s), publish every "
            << publish_every << " records, " << reps
            << " interleaved rep(s)\n";

  // Warm both paths once (page-in, branch predictors) before measuring.
  RunOnce(world, shards, 1, false, publish_every);
  RunOnce(world, shards, 1, true, publish_every);

  double baseline_best = 0.0, swapping_best = 0.0;
  std::uint64_t max_publishes = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    // Alternate the A/B order each rep so slow drift cancels instead of
    // consistently penalising whichever side runs second.
    double base, swap;
    std::uint64_t publishes = 0;
    if (r % 2 == 0) {
      base = RunOnce(world, shards, passes, false, publish_every);
      swap = RunOnce(world, shards, passes, true, publish_every, &publishes);
    } else {
      swap = RunOnce(world, shards, passes, true, publish_every, &publishes);
      base = RunOnce(world, shards, passes, false, publish_every);
    }
    baseline_best = std::max(baseline_best, base);
    swapping_best = std::max(swapping_best, swap);
    max_publishes = std::max(max_publishes, publishes);
    std::cout << "  rep " << (r + 1) << ": baseline " << std::fixed
              << static_cast<std::uint64_t>(base) << " rec/s, swapping "
              << static_cast<std::uint64_t>(swap) << " rec/s (" << publishes
              << " publishes)\n";
  }

  const double overhead_pct =
      (baseline_best - swapping_best) / baseline_best * 100.0;
  const bool pass = overhead_pct <= threshold_pct;
  std::cout << "baseline best: " << static_cast<std::uint64_t>(baseline_best)
            << " rec/s\n"
            << "swapping best: " << static_cast<std::uint64_t>(swapping_best)
            << " rec/s\n"
            << "overhead:      " << std::setprecision(2) << overhead_pct
            << "% (threshold " << threshold_pct << "%) — "
            << (pass ? "PASS" : "FAIL") << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"name\": \"perf_model_swap\",\n"
      << "  \"stream_records\": " << world.stream.size() << ",\n"
      << "  \"shard_count\": " << shards << ",\n"
      << "  \"passes\": " << passes << ",\n"
      << "  \"repetitions\": " << reps << ",\n"
      << "  \"publish_every_records\": " << publish_every << ",\n"
      << "  \"publishes_per_run\": " << max_publishes << ",\n"
      << "  \"baseline_records_per_s\": " << baseline_best << ",\n"
      << "  \"swapping_records_per_s\": " << swapping_best << ",\n"
      << "  \"overhead_pct\": " << overhead_pct << ",\n"
      << "  \"threshold_pct\": " << threshold_pct << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
