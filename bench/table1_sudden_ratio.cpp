// Reproduces paper Table I: in-row predictable ratio of UERs per
// micro-level, on the calibrated synthetic fleet.
#include "analysis/empirical.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Table I: in-row predictable ratio of UERs", args, fleet);

  hbm::AddressCodec codec(fleet.topology);
  const auto study = analysis::ComputeSuddenUerStudy(fleet.log, codec);

  // Paper Table I reference values.
  struct PaperRow {
    const char* level;
    int sudden;
    int non_sudden;
    const char* ratio;
  };
  static constexpr PaperRow kPaper[] = {
      {"NPU", 243, 175, "41.86%"},   {"HBM", 246, 175, "41.56%"},
      {"SID", 260, 180, "40.91%"},   {"PS-CH", 311, 185, "37.29%"},
      {"BG", 434, 252, "36.73%"},    {"Bank", 760, 314, "29.23%"},
      {"Row", 4980, 229, "4.39%"},
  };

  TextTable table({"Micro-level", "Sudden UER", "Non-sudden UER",
                   "Predictable Ratio", "Paper Sudden", "Paper Non-sudden",
                   "Paper Ratio"});
  for (std::size_t i = 0; i < study.size(); ++i) {
    const auto& row = study[i];
    const auto& paper = kPaper[i];
    table.AddRow({hbm::LevelName(row.level), std::to_string(row.sudden),
                  std::to_string(row.non_sudden),
                  TextTable::FormatPercent(row.PredictableRatio()),
                  std::to_string(paper.sudden), std::to_string(paper.non_sudden),
                  paper.ratio});
  }
  std::cout << table.Render("In-row predictable ratio of UERs (measured vs paper)");
  std::cout << "\nshape check: the predictable ratio must fall monotonically\n"
               "from the NPU level to a near-collapse at the row level —\n"
               "this is the paper's motivation for cross-row prediction.\n";
  return 0;
}
