// Extension bench: how far does the in-row paradigm get with a real learned
// model rather than the idealized "perfect precursor detector"?
//
// The paper argues (§I, §III-A) that in-row prediction is capped by the
// sudden-UER ratio: at most ~4.4% of row failures have any in-row precursor
// to learn from. This bench trains an honest in-row model (tree ensemble
// over per-row precursor features) and measures its ICR next to the
// idealized ceiling and Cordial.
#include "bench_common.hpp"
#include "core/inrow.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  auto args = bench::BenchArgs::Parse(argc, argv);
  if (argc <= 1) args.scale = 0.5;
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Learned in-row baseline vs the paradigm ceiling", args,
                     fleet);

  hbm::AddressCodec codec(fleet.topology);
  const auto banks = fleet.log.GroupByBank(codec);

  // 50:50 split by bank for the in-row model.
  std::vector<const trace::BankHistory*> train, test;
  for (std::size_t i = 0; i < banks.size(); ++i) {
    (i % 2 == 0 ? train : test).push_back(&banks[i]);
  }
  Rng rng(args.seed + 7);
  core::InRowPredictor predictor(fleet.topology,
                                 ml::LearnerKind::kRandomForest);
  std::cerr << "training the in-row model...\n";
  predictor.Train(train, rng);
  const ml::Dataset train_data = predictor.BuildDataset(train);
  const auto counts = train_data.ClassCounts();
  std::cout << "in-row training set: " << train_data.size() << " samples ("
            << counts[1] << " rows that later failed)\n\n";

  core::IcrEvaluator evaluator(fleet.topology);
  core::LearnedInRowStrategy learned(predictor);
  core::InRowStrategy ideal;
  core::NeighborRowsStrategy neighbor(4, fleet.topology);
  const auto learned_result = evaluator.Evaluate(test, learned);
  const auto ideal_result = evaluator.Evaluate(test, ideal);
  const auto neighbor_result = evaluator.Evaluate(test, neighbor);

  TextTable table({"Strategy", "ICR", "Rows Spared"});
  table.AddRow({"Learned in-row (RF)",
                TextTable::FormatPercent(learned_result.Icr()),
                std::to_string(learned_result.rows_spared)});
  table.AddRow({"Idealized in-row (isolate on any precursor)",
                TextTable::FormatPercent(ideal_result.Icr()),
                std::to_string(ideal_result.rows_spared)});
  table.AddRow({"Neighbor Rows (cross-row, non-learned)",
                TextTable::FormatPercent(neighbor_result.Icr()),
                std::to_string(neighbor_result.rows_spared)});
  std::cout << table.Render("In-row paradigm vs the simplest cross-row "
                            "strategy");
  std::cout << "\nshape check: even a LEARNED in-row model cannot exceed the\n"
               "idealized in-row ceiling (paper: 4.39%), and both fall far\n"
               "short of even the naive cross-row baseline — the structural\n"
               "argument for the cross-row paradigm.\n";
  return 0;
}
