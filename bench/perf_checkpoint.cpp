// Checkpoint cost gate: steady-state delta vs full-text snapshot.
//
// The delta path exists so a large drained fleet can checkpoint at a cost
// proportional to what changed, not to what exists. This benchmark builds
// one FleetServer holding >= --banks populated bank profiles (default 4096,
// two NPUs' worth), marks the state clean, re-dirties ~--dirty-fraction of
// the banks (default 1%), and then prices the two snapshot encodings the
// server can emit from that state:
//
//   * full-text — SaveCheckpoint(kText): the v1 frame every deployment
//     before the chain subsystem wrote on every interval.
//   * delta     — SaveDeltaCheckpoint(): the binary dirty-bank frame a
//     chain appends between compactions (DESIGN.md §14).
//
// Both serializers are const and leave the dirty set alone, so each rep
// re-measures the identical state. Repetitions interleave the two sides
// (A B B A ...) and keep each side's best (minimum seconds per save); the
// delta is additionally averaged over --delta-iters inner saves per
// measurement because a ~1%-dirty delta is microseconds against the full
// snapshot's milliseconds.
//
// Emits BENCH_ckpt.json and exits non-zero unless the delta is at least
// --threshold times cheaper (default 10x) in BOTH bytes and wall time —
// tier-1 runs this, so a regression that drags delta cost back toward
// full-snapshot cost cannot land silently.
//
// Usage: perf_checkpoint [--banks N] [--dirty-fraction F] [--reps N]
//                        [--delta-iters N] [--shards N] [--threshold X]
//                        [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "hbm/address.hpp"
#include "serve/fleet_server.hpp"
#include "trace/fleet.hpp"

namespace {

using namespace cordial;

/// Deterministic address for flat bank index `b`, walking the topology
/// fine-to-coarse: 256 banks per HBM, 8 HBMs per NPU. All on node 0 — two
/// NPUs already hold 4096 banks.
hbm::DeviceAddress BankAddress(std::uint64_t b) {
  const std::uint64_t c = b % 256;
  hbm::DeviceAddress address;
  address.node = 0;
  address.npu = static_cast<std::uint32_t>(b / 2048);
  address.hbm = static_cast<std::uint32_t>((b / 256) % 8);
  address.sid = static_cast<std::uint32_t>(c / 128);
  address.channel = static_cast<std::uint32_t>((c / 32) % 4);
  address.pseudo_channel = static_cast<std::uint32_t>((c / 16) % 2);
  address.bank_group = static_cast<std::uint32_t>((c / 4) % 4);
  address.bank = static_cast<std::uint32_t>(c % 4);
  return address;
}

/// Trained models for the server under test (same construction as the other
/// serve benches; the checkpoint cost does not depend on model quality).
struct BenchModels {
  hbm::TopologyConfig topology;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;

  BenchModels()
      : classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    trace::CalibrationProfile profile;
    profile.scale = 0.08;
    const trace::GeneratedFleet fleet =
        trace::FleetGenerator(topology, profile).Generate(123);
    hbm::AddressCodec codec(topology);
    const auto banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    Rng rng(7);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
  }

  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }
};

/// Feed one CE to each bank in [first, first+step, ...) < banks and drain.
void Touch(serve::FleetServer& server, std::uint64_t banks,
           std::uint64_t first, std::uint64_t step, std::size_t per_bank,
           double* clock, Rng& rng) {
  std::vector<trace::MceRecord> batch;
  for (std::uint64_t b = first; b < banks; b += step) {
    for (std::size_t i = 0; i < per_bank; ++i) {
      trace::MceRecord record;
      record.time_s = (*clock += 1.0);
      record.type = hbm::ErrorType::kCe;
      record.address = BankAddress(b);
      record.address.row = static_cast<std::uint32_t>(rng.UniformU64(32768));
      record.address.col = static_cast<std::uint32_t>(rng.UniformU64(128));
      batch.push_back(record);
    }
  }
  server.SubmitBatch(batch);
  server.Drain();
}

/// Seconds per save, averaged over `iters` back-to-back saves of the same
/// (unchanging) drained state.
template <typename Save>
double TimeSave(Save&& save, std::size_t iters) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) save();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count() /
         static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t banks = 4096;
  double dirty_fraction = 0.01;
  std::size_t reps = 5;
  std::size_t delta_iters = 32;
  std::size_t shards = 4;
  double threshold = 10.0;
  std::string out_path = "BENCH_ckpt.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--banks") {
      banks = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dirty-fraction") {
      dirty_fraction = std::strtod(next(), nullptr);
    } else if (arg == "--reps") {
      reps = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--delta-iters") {
      delta_iters =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--shards") {
      shards = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--threshold") {
      threshold = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (banks == 0 || banks > 10240 || reps == 0 || delta_iters == 0 ||
      shards == 0 || dirty_fraction <= 0.0 || dirty_fraction > 1.0) {
    std::cerr << "--banks must be 1..10240 (node 0), --reps/--delta-iters/"
                 "--shards >= 1, --dirty-fraction in (0, 1]\n";
    return 2;
  }

  const BenchModels models;
  serve::FleetServerConfig config;
  config.shard_count = shards;
  config.queue.capacity = static_cast<std::size_t>(banks) * 8 + 1;
  serve::FleetServer server(models.topology, models.classifier,
                            models.single_pred, models.double_or_null(),
                            config);

  // Populate every bank (6 CEs each), checkpoint-clean the world, then
  // re-dirty ~dirty_fraction of the banks with one CE each — the steady
  // state a chain's delta writes see between compactions.
  Rng rng(99);
  double clock = 0.0;
  server.Start();
  Touch(server, banks, 0, 1, 6, &clock, rng);
  server.MarkCheckpointClean();
  const std::uint64_t dirty_step = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(1.0 / dirty_fraction));
  Touch(server, banks, 0, dirty_step, 1, &clock, rng);
  const std::size_t dirty_banks = server.DirtyBankCount();

  const auto save_full_text = [&] {
    std::ostringstream out;
    server.SaveCheckpoint(out, core::StateEncoding::kText);
    return out.str();
  };
  const auto save_delta = [&] {
    std::ostringstream out;
    server.SaveDeltaCheckpoint(out);
    return out.str();
  };
  const std::uint64_t full_bytes = save_full_text().size();
  const std::uint64_t delta_bytes = save_delta().size();
  std::cout << "state: " << server.TotalBankCount() << " bank(s), "
            << dirty_banks << " dirty, " << shards << " shard(s)\n"
            << "full-text " << full_bytes << " B, delta " << delta_bytes
            << " B\n";

  double full_best = 1e300, delta_best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    double full, delta;
    if (r % 2 == 0) {
      full = TimeSave(save_full_text, 1);
      delta = TimeSave(save_delta, delta_iters);
    } else {
      delta = TimeSave(save_delta, delta_iters);
      full = TimeSave(save_full_text, 1);
    }
    full_best = std::min(full_best, full);
    delta_best = std::min(delta_best, delta);
    std::cout << "  rep " << (r + 1) << ": full-text " << std::fixed
              << std::setprecision(1) << full * 1e6 << " us, delta "
              << delta * 1e6 << " us\n";
  }
  server.Stop();

  const double bytes_ratio =
      static_cast<double>(full_bytes) / static_cast<double>(delta_bytes);
  const double time_ratio = full_best / delta_best;
  const bool pass = bytes_ratio >= threshold && time_ratio >= threshold;
  std::cout << "bytes ratio: " << std::setprecision(1) << bytes_ratio
            << "x, time ratio: " << time_ratio << "x (threshold "
            << threshold << "x) — " << (pass ? "PASS" : "FAIL") << "\n";

  std::ofstream out(out_path);
  out << std::setprecision(17)
      << "{\n"
      << "  \"name\": \"perf_checkpoint\",\n"
      << "  \"banks\": " << banks << ",\n"
      << "  \"dirty_banks\": " << dirty_banks << ",\n"
      << "  \"shard_count\": " << shards << ",\n"
      << "  \"repetitions\": " << reps << ",\n"
      << "  \"full_text_bytes\": " << full_bytes << ",\n"
      << "  \"delta_bytes\": " << delta_bytes << ",\n"
      << "  \"full_text_seconds\": " << full_best << ",\n"
      << "  \"delta_seconds\": " << delta_best << ",\n"
      << "  \"bytes_ratio\": " << bytes_ratio << ",\n"
      << "  \"time_ratio\": " << time_ratio << ",\n"
      << "  \"threshold\": " << threshold << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
