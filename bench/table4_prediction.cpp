// Reproduces paper Table IV: cross-row failure prediction performance and
// Isolation Coverage Rate for the Neighbor-Rows industrial baseline and
// Cordial with each of the three tree learners.
#include "bench_common.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Table IV: failure prediction methods", args, fleet);

  struct PaperRow {
    const char* method;
    double p, r, f1, icr;
  };
  static constexpr PaperRow kPaper[] = {
      {"Neighbor Rows", 0.322, 0.393, 0.347, 0.1331},
      {"Cordial-LGBM", 0.642, 0.504, 0.563, 0.1860},
      {"Cordial-XGB", 0.732, 0.509, 0.591, 0.1887},
      {"Cordial-RF", 0.806, 0.550, 0.662, 0.1958},
  };

  TextTable table({"Method", "Precision", "Recall", "F1 Score", "ICR",
                   "Paper P", "Paper R", "Paper F1", "Paper ICR"});

  static constexpr ml::LearnerKind kKinds[] = {ml::LearnerKind::kLgbmStyle,
                                               ml::LearnerKind::kXgbStyle,
                                               ml::LearnerKind::kRandomForest};
  bool baseline_printed = false;
  double in_row_icr = 0.0;
  for (int m = 0; m < 3; ++m) {
    core::PipelineConfig config;
    config.learner = kKinds[m];
    core::CordialPipeline pipeline(fleet.topology, config);
    std::cerr << "running pipeline with " << ml::LearnerKindName(kKinds[m])
              << "...\n";
    const core::PipelineResult result = pipeline.Run(fleet, args.seed + 3);
    if (!baseline_printed) {
      const auto& b = result.neighbor_baseline;
      table.AddRow({b.method, TextTable::FormatDouble(b.block_metrics.precision),
                    TextTable::FormatDouble(b.block_metrics.recall),
                    TextTable::FormatDouble(b.block_metrics.f1),
                    TextTable::FormatPercent(b.icr.Icr()),
                    TextTable::FormatDouble(kPaper[0].p),
                    TextTable::FormatDouble(kPaper[0].r),
                    TextTable::FormatDouble(kPaper[0].f1),
                    TextTable::FormatPercent(kPaper[0].icr)});
      baseline_printed = true;
      in_row_icr = result.in_row_icr.Icr();
    }
    const auto& c = result.cordial;
    const auto& paper = kPaper[m + 1];
    table.AddRow({c.method, TextTable::FormatDouble(c.block_metrics.precision),
                  TextTable::FormatDouble(c.block_metrics.recall),
                  TextTable::FormatDouble(c.block_metrics.f1),
                  TextTable::FormatPercent(c.icr.Icr()),
                  TextTable::FormatDouble(paper.p),
                  TextTable::FormatDouble(paper.r),
                  TextTable::FormatDouble(paper.f1),
                  TextTable::FormatPercent(paper.icr)});
  }
  std::cout << table.Render(
      "Performance of failure prediction methods (measured vs paper)");
  std::cout << "\nidealized in-row paradigm ICR ceiling: "
            << TextTable::FormatPercent(in_row_icr)
            << "  (paper cites 4.39% as the in-row ceiling)\n";
  std::cout << "\nshape check: every Cordial variant dominates the baseline\n"
               "on F1 and ICR; the ICR ordering is in-row << Neighbor Rows <\n"
               "Cordial, mirroring the paper's headline +90.7% F1 / +47.1% ICR.\n";
  return 0;
}
