// Thread-scaling benchmark for the deterministic parallel layer: fleet
// generation, random-forest training, and ICR replay at 1/2/4/8 threads.
// Speedup is real-time ratio versus the Arg(1) row of the same benchmark.
// Results are written to BENCH_parallel.json (google-benchmark JSON) unless
// the caller passes an explicit --benchmark_out.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/isolation.hpp"
#include "hbm/address.hpp"
#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "ml/forest.hpp"
#include "trace/fleet.hpp"

namespace {

using namespace cordial;

const trace::GeneratedFleet& SharedFleet() {
  static const trace::GeneratedFleet fleet = [] {
    hbm::TopologyConfig topology;
    trace::CalibrationProfile profile;
    profile.scale = 0.1;
    return trace::FleetGenerator(topology, profile).Generate(123);
  }();
  return fleet;
}

const std::vector<const trace::BankHistory*>& SharedUerBanks() {
  static const std::vector<trace::BankHistory> banks = [] {
    hbm::AddressCodec codec(SharedFleet().topology);
    return SharedFleet().log.GroupByBank(codec);
  }();
  static const std::vector<const trace::BankHistory*> uer = [] {
    std::vector<const trace::BankHistory*> out;
    for (const trace::BankHistory& bank : banks) {
      if (bank.HasUer()) out.push_back(&bank);
    }
    return out;
  }();
  return uer;
}

const ml::Dataset& SharedDataset() {
  static const ml::Dataset data = [] {
    ml::Dataset d(/*num_features=*/8, /*num_classes=*/2);
    Rng rng(77);
    for (int i = 0; i < 4000; ++i) {
      const int label = static_cast<int>(rng.UniformU64(2));
      double row[8];
      for (double& v : row) v = rng.UniformReal();
      row[0] += label * 0.6;
      row[3] -= label * 0.4;
      d.AddRow(row, label);
    }
    return d;
  }();
  return data;
}

void BM_FleetGenerate(benchmark::State& state) {
  SetThreadCount(static_cast<std::size_t>(state.range(0)));
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = 0.05;
  const trace::FleetGenerator generator(topology, profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(42));
  }
  SetThreadCount(0);
}
BENCHMARK(BM_FleetGenerate)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_RandomForestFit(benchmark::State& state) {
  SetThreadCount(static_cast<std::size_t>(state.range(0)));
  const ml::Dataset& data = SharedDataset();
  ml::RandomForestOptions options;
  options.n_trees = 40;
  for (auto _ : state) {
    ml::RandomForestClassifier forest(options);
    Rng rng(11);
    forest.Fit(data, rng);
    benchmark::DoNotOptimize(forest.tree_count());
  }
  SetThreadCount(0);
}
BENCHMARK(BM_RandomForestFit)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_IcrReplay(benchmark::State& state) {
  SetThreadCount(static_cast<std::size_t>(state.range(0)));
  const std::vector<const trace::BankHistory*>& banks = SharedUerBanks();
  const core::IcrEvaluator evaluator(SharedFleet().topology);
  core::NeighborRowsStrategy strategy(4, SharedFleet().topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(banks, strategy));
  }
  SetThreadCount(0);
}
BENCHMARK(BM_IcrReplay)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_parallel.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
