// Reproduces paper Fig 3(a): example bank-level error maps for the failure
// pattern families, rendered as ASCII heat maps (rows x columns).
#include "bench_common.hpp"
#include "hbm/error_map.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  auto args = bench::BenchArgs::Parse(argc, argv);
  if (argc <= 1) args.scale = 0.25;  // examples need only a small fleet
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Fig 3(a): examples of bank-level failure patterns", args,
                     fleet);

  hbm::AddressCodec codec(fleet.topology);
  const auto banks = fleet.log.GroupByBank(codec);

  static constexpr hbm::PatternShape kShapes[] = {
      hbm::PatternShape::kDoubleRowCluster,
      hbm::PatternShape::kHalfTotalRowCluster,
      hbm::PatternShape::kSingleRowCluster,
      hbm::PatternShape::kScattered,
      hbm::PatternShape::kWholeColumn,
  };
  for (hbm::PatternShape shape : kShapes) {
    // Pick the bank of this shape with the most events (clearest picture).
    const trace::BankHistory* best = nullptr;
    for (const auto& bank : banks) {
      const trace::BankTruth* truth = fleet.FindBank(bank.bank_key);
      if (truth == nullptr || truth->shape != shape) continue;
      if (best == nullptr || bank.events.size() > best->events.size()) {
        best = &bank;
      }
    }
    std::cout << "--- " << hbm::PatternShapeName(shape) << " ---\n";
    if (best == nullptr) {
      std::cout << "(no bank of this shape in the generated fleet)\n\n";
      continue;
    }
    hbm::BankErrorMap map(fleet.topology);
    for (const auto& e : best->events) {
      map.Add(e.address.row, e.address.col, e.type);
    }
    std::cout << map.Render(24, 64)
              << "legend: '.' clean  'c' CE  'o' UEO  'X' UER\n\n";
  }
  std::cout << "shape check: clustering patterns concentrate UERs in one or\n"
               "two narrow row bands; scattered spreads them bank-wide; the\n"
               "whole-column case pins one column across most rows.\n";
  return 0;
}
