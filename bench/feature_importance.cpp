// Analysis bench: which features carry each stage of Cordial?
//
// Trains the Random-Forest pattern classifier and the single-cluster
// cross-row predictor on the calibrated fleet and prints gain-normalized
// feature importances, plus probability-quality measures (Brier score and
// expected calibration error) for the block model — the numbers that tell
// an operator whether the predicted probabilities can be thresholded
// directly.
#include <algorithm>

#include "bench_common.hpp"
#include "core/crossrow.hpp"
#include "core/pattern_classifier.hpp"
#include "ml/metrics.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  auto args = bench::BenchArgs::Parse(argc, argv);
  if (argc <= 1) args.scale = 0.5;
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Feature importance and probability quality", args, fleet);

  hbm::AddressCodec codec(fleet.topology);
  const auto banks = fleet.log.GroupByBank(codec);
  analysis::PatternLabeler labeler(fleet.topology);
  std::vector<core::LabelledBank> labelled;
  std::vector<const trace::BankHistory*> singles;
  for (const auto& bank : banks) {
    if (!bank.HasUer()) continue;
    const hbm::FailureClass cls = labeler.LabelClass(bank);
    labelled.push_back(core::LabelledBank{&bank, cls});
    if (cls == hbm::FailureClass::kSingleRowClustering) {
      singles.push_back(&bank);
    }
  }
  Rng rng(args.seed + 1);

  auto print_top = [](const std::string& title,
                      const std::vector<std::string>& names,
                      const std::vector<double>& importance) {
    std::vector<std::size_t> order(importance.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return importance[a] > importance[b];
    });
    TextTable table({"Rank", "Feature", "Importance"});
    for (std::size_t r = 0; r < std::min<std::size_t>(10, order.size()); ++r) {
      table.AddRow({std::to_string(r + 1), names[order[r]],
                    TextTable::FormatPercent(importance[order[r]])});
    }
    std::cout << table.Render(title) << "\n";
  };

  // Stage 1: pattern classification.
  core::PatternClassifier classifier(fleet.topology,
                                     ml::LearnerKind::kRandomForest);
  classifier.Train(labelled, rng);
  print_top("Pattern classification (RF): top features",
            classifier.extractor().feature_names(),
            classifier.FeatureImportance());

  // Stage 2: cross-row block prediction on single-row clusters, with a
  // held-out probability-quality check.
  const std::size_t n_train = singles.size() * 7 / 10;
  std::vector<const trace::BankHistory*> train(singles.begin(),
                                               singles.begin() + n_train);
  std::vector<const trace::BankHistory*> held(singles.begin() + n_train,
                                              singles.end());
  core::CrossRowPredictor predictor(fleet.topology,
                                    ml::LearnerKind::kRandomForest);
  predictor.Train(train, rng);
  print_top("Cross-row block prediction (RF): top features",
            predictor.extractor().feature_names(),
            predictor.FeatureImportance());

  std::vector<double> proba;
  std::vector<int> truth;
  for (const auto* bank : held) {
    for (const auto& anchor : predictor.AnchorsOf(*bank)) {
      const auto block_truth = predictor.BlockTruth(*bank, anchor);
      const auto block_proba = predictor.PredictBlockProba(*bank, anchor);
      const auto window = predictor.extractor().WindowAt(anchor.row);
      for (std::size_t b = 0; b < block_truth.size(); ++b) {
        if (!window.BlockRange(b).has_value()) continue;
        proba.push_back(block_proba[b]);
        truth.push_back(block_truth[b]);
      }
    }
  }
  std::cout << "block-probability quality on " << proba.size()
            << " held-out blocks:\n"
            << "  Brier score: "
            << TextTable::FormatDouble(ml::BrierScore(proba, truth)) << "\n"
            << "  expected calibration error: "
            << TextTable::FormatDouble(
                   ml::ExpectedCalibrationError(proba, truth))
            << "\n\nexpected shape: spatial features (stride fold, nearest-\n"
               "row distances, row diffs) dominate the block model; count\n"
               "and span features dominate pattern classification.\n";
  return 0;
}
