// Ingestion queue transport gate (records/sec).
//
// PR 6 replaced EngineShard's mutex-guarded deque with the lock-free
// MpscRing + batched submit. This benchmark pins the transport win itself:
// it pushes MceRecords through three queue transports whose consumer
// discards every record — no engine work, so wall time is queue cost, not
// prediction cost (with the engine in the loop every transport converges on
// engine throughput and the comparison measures nothing).
//
//   * mutex        — a faithful replica of the pre-ring EngineShard queue:
//                    bounded deque, one mutex, not_empty/not_full condvars,
//                    one lock cycle per push and per pop.
//   * ring         — MpscRing::TryPush per record + spin-then-park via
//                    ParkingSpot (the new EngineShard Submit path).
//   * ring_batched — records staged in chunks and claimed with
//                    MpscRing::TryPushBatch (the new SubmitBatch path).
//
// Runs each transport at 1/2/4/8 producers, interleaving repetitions and
// keeping each side's best run (least-perturbed measurement of fixed work,
// same method as perf_obs_overhead). Emits BENCH_queue.json and exits
// non-zero unless the batched ring beats the mutex path into one shard by
// --threshold x (default 5) at its best producer count — the acceptance
// gate for the lock-free ingest path, run by tier-1. Contention is where
// lock-freedom pays: at 1 producer on an idle host the mutex path
// degenerates into alternating fill-1024/drain-1024 phases that amortize
// its condvar wakeups, so the gap there understates the serving-plane win
// (every deployment has concurrent feeders per shard).
//
// Usage: perf_queue_throughput [--records N] [--reps N] [--capacity N]
//                              [--threshold X] [--out FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/mpsc_ring.hpp"
#include "trace/mce_record.hpp"

namespace {

using namespace cordial;

trace::MceRecord MakeRecord(std::uint64_t i) {
  trace::MceRecord r;
  r.time_s = static_cast<double>(i);
  r.address.row = static_cast<std::uint32_t>(i % 4096);
  r.type = hbm::ErrorType::kCe;
  return r;
}

/// The pre-ring EngineShard queue, reduced to its transport — a faithful
/// replica of the replaced Submit/WorkerLoop (same QueueItem pair, the
/// front() copy, counters under the lock, notify_one while holding it, and
/// the worker's two lock cycles per record around the engine call), minus
/// the engine work itself.
double RunMutexQueue(std::uint64_t records, std::size_t producers,
                     std::size_t capacity) {
  using QueueItem =
      std::pair<trace::MceRecord, std::chrono::steady_clock::time_point>;
  std::deque<QueueItem> queue;
  std::mutex mutex;
  std::condition_variable not_empty, not_full, idle;
  bool stopping = false;
  bool busy = false;
  std::uint64_t submitted = 0, processed = 0;

  const auto start = std::chrono::steady_clock::now();
  std::thread consumer([&] {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      not_empty.wait(lock, [&] { return stopping || !queue.empty(); });
      if (queue.empty()) return;  // stopping and fully drained
      const QueueItem item = queue.front();
      queue.pop_front();
      busy = true;
      lock.unlock();
      not_full.notify_one();
      // (engine_.Observe would run here)
      static_cast<void>(item);
      lock.lock();
      busy = false;
      ++processed;
      if (queue.empty()) idle.notify_all();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(producers);
  const std::uint64_t per = records / producers;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::uint64_t n =
          p == 0 ? records - per * (producers - 1) : per;
      for (std::uint64_t i = 0; i < n; ++i) {
        const trace::MceRecord record = MakeRecord(i);
        std::unique_lock<std::mutex> lock(mutex);
        not_full.wait(lock, [&] { return queue.size() < capacity; });
        queue.emplace_back(record, std::chrono::steady_clock::time_point{});
        ++submitted;
        not_empty.notify_one();  // held lock, exactly like the old Submit
      }
    });
  }
  for (auto& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(mutex);
    stopping = true;
  }
  not_empty.notify_all();
  consumer.join();
  const auto end = std::chrono::steady_clock::now();
  CORDIAL_CHECK(processed == records && submitted == records && !busy);
  return static_cast<double>(records) /
         std::chrono::duration<double>(end - start).count();
}

/// The new EngineShard transport: MpscRing + spin-then-park ParkingSpots.
/// `batch` > 1 stages producer chunks through TryPushBatch (the SubmitBatch
/// path); `batch` == 1 is the per-record Submit path.
double RunRing(std::uint64_t records, std::size_t producers,
               std::size_t capacity, std::size_t batch) {
  constexpr std::size_t kSpinBudget = 128;
  constexpr std::size_t kDrainMax = 256;
  MpscRing<trace::MceRecord> ring(capacity);
  ParkingSpot not_empty, not_full;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> consumed{0};

  const auto spin = [](auto&& ready) {
    for (std::size_t i = 0; i < kSpinBudget; ++i) {
      if (ready()) return true;
      if ((i & 15u) == 15u) {
        std::this_thread::yield();
      } else {
        CpuRelax();
      }
    }
    return ready();
  };

  const auto start = std::chrono::steady_clock::now();
  std::thread consumer([&] {
    std::vector<trace::MceRecord> buf(kDrainMax);
    for (;;) {
      const std::size_t n = ring.TryPopBatch(buf.data(), kDrainMax);
      if (n == 0) {
        if (done.load(std::memory_order_acquire) && ring.ApproxEmpty()) {
          return;
        }
        const auto ready = [&] {
          return ring.PoppableNow() || done.load(std::memory_order_acquire);
        };
        if (spin(ready)) continue;
        const std::uint64_t epoch = not_empty.PrepareWait();
        if (ready()) {
          not_empty.CancelWait();
        } else {
          not_empty.Wait(epoch);
        }
        continue;
      }
      consumed.fetch_add(n, std::memory_order_relaxed);
      not_full.Notify();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(producers);
  const std::uint64_t per = records / producers;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::uint64_t n =
          p == 0 ? records - per * (producers - 1) : per;
      std::vector<trace::MceRecord> chunk(batch);
      std::uint64_t i = 0;
      while (i < n) {
        const std::size_t len =
            static_cast<std::size_t>(std::min<std::uint64_t>(batch, n - i));
        for (std::size_t j = 0; j < len; ++j) chunk[j] = MakeRecord(i + j);
        std::size_t off = 0;
        while (off < len) {
          const std::size_t pushed =
              batch == 1 ? (ring.TryPush(std::move(chunk[0])) ? 1u : 0u)
                         : ring.TryPushBatch(chunk.data() + off, len - off);
          if (pushed > 0) {
            off += pushed;
            not_empty.Notify();
            continue;
          }
          const auto ready = [&] { return ring.ApproxSize() < capacity; };
          if (spin(ready)) continue;
          const std::uint64_t epoch = not_full.PrepareWait();
          if (ready()) {
            not_full.CancelWait();
          } else {
            not_full.Wait(epoch);
          }
        }
        i += len;
      }
    });
  }
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  not_empty.Notify();
  consumer.join();
  const auto end = std::chrono::steady_clock::now();
  CORDIAL_CHECK(consumed.load() == records);
  return static_cast<double>(records) /
         std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t records = 200000;
  std::size_t reps = 4;
  std::size_t capacity = 1024;
  std::size_t batch = 64;
  double threshold_x = 5.0;
  std::string out_path = "BENCH_queue.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--records") {
      records = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--reps") {
      reps = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--capacity") {
      capacity = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--batch") {
      batch = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--threshold") {
      threshold_x = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (records == 0 || reps == 0 || capacity == 0 || batch == 0) {
    std::cerr << "--records, --reps, --capacity and --batch must be >= 1\n";
    return 2;
  }

  const std::vector<std::size_t> producer_counts = {1, 2, 4, 8};
  struct Row {
    std::size_t producers;
    double mutex_rps = 0.0;
    double ring_rps = 0.0;
    double ring_batched_rps = 0.0;
  };
  std::vector<Row> rows;

  std::cout << records << " records, capacity " << capacity << ", batch "
            << batch << ", " << reps << " interleaved rep(s)\n";
  for (const std::size_t producers : producer_counts) {
    Row row;
    row.producers = producers;
    // Warm each transport once, then interleave A/B/C measurements so
    // scheduler drift hits all three equally; keep each side's best.
    RunMutexQueue(records / 4, producers, capacity);
    RunRing(records / 4, producers, capacity, 1);
    RunRing(records / 4, producers, capacity, batch);
    for (std::size_t r = 0; r < reps; ++r) {
      row.mutex_rps = std::max(
          row.mutex_rps, RunMutexQueue(records, producers, capacity));
      row.ring_rps =
          std::max(row.ring_rps, RunRing(records, producers, capacity, 1));
      row.ring_batched_rps = std::max(
          row.ring_batched_rps, RunRing(records, producers, capacity, batch));
    }
    rows.push_back(row);
    std::cout << "  " << producers << " producer(s): mutex "
              << static_cast<std::uint64_t>(row.mutex_rps) << " rec/s, ring "
              << static_cast<std::uint64_t>(row.ring_rps)
              << " rec/s, ring+batch "
              << static_cast<std::uint64_t>(row.ring_batched_rps)
              << " rec/s (" << std::fixed << std::setprecision(1)
              << row.ring_batched_rps / row.mutex_rps << "x)\n";
  }

  double speedup = 0.0;
  for (const Row& row : rows) {
    speedup = std::max(speedup, row.ring_batched_rps / row.mutex_rps);
  }
  const bool pass = speedup >= threshold_x;
  std::cout << "best batched-ring speedup (single shard): "
            << std::setprecision(2) << speedup << "x (threshold "
            << threshold_x << "x) — " << (pass ? "PASS" : "FAIL") << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"name\": \"perf_queue_throughput\",\n"
      << "  \"records\": " << records << ",\n"
      << "  \"capacity\": " << capacity << ",\n"
      << "  \"batch\": " << batch << ",\n"
      << "  \"repetitions\": " << reps << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"producers\": " << row.producers
        << ", \"mutex_records_per_s\": " << row.mutex_rps
        << ", \"ring_records_per_s\": " << row.ring_rps
        << ", \"ring_batched_records_per_s\": " << row.ring_batched_rps
        << ", \"batched_speedup_x\": " << row.ring_batched_rps / row.mutex_rps
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"best_batched_speedup_x\": " << speedup << ",\n"
      << "  \"threshold_x\": " << threshold_x << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
