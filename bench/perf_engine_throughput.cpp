// Throughput benchmark for the online prediction engine (records/sec).
//
// Three paths over the same fleet and the same trained models:
//
//   * IcrReplayRescan      — the pre-refactor cost model: every anchor
//                            re-extracts each of the 16 block feature
//                            vectors from the raw event list (one O(events)
//                            scan per (anchor, block)), and classification
//                            rescans the history too.
//   * IcrReplayIncremental — the current CordialStrategy: one incrementally
//                            maintained BankProfile per bank, O(events) per
//                            bank total.
//   * EngineStreaming      — PredictionEngine::Observe over the raw record
//                            stream, the path deployment runs.
//
// Results go to BENCH_engine.json (google-benchmark JSON) unless the caller
// passes an explicit --benchmark_out. The refactor's acceptance bar is
// IcrReplayIncremental >= 2x the records/sec of IcrReplayRescan.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/isolation.hpp"
#include "hbm/address.hpp"
#include "ml/classifier.hpp"
#include "trace/fleet.hpp"

namespace {

using namespace cordial;

/// UER banks as deployment sees them: months of correctable-error noise
/// around the handful of UERs (Table II's CE counts dwarf the UER counts).
/// The generator's incident-scale histories are only tens of events, which
/// hides the rescan path's O(events) per-(anchor, block) cost behind model
/// inference; padding each bank with realistic CE background restores the
/// event densities the replay actually runs at.
trace::BankHistory Densify(const trace::BankHistory& bank,
                           std::size_t target_events, std::uint32_t rows,
                           Rng& rng) {
  trace::BankHistory dense = bank;
  const double horizon = bank.events.back().time_s;
  while (dense.events.size() < target_events) {
    trace::MceRecord ce =
        bank.events[rng.UniformU64(bank.events.size())];
    ce.type = hbm::ErrorType::kCe;
    ce.time_s = rng.UniformReal(0.0, horizon);
    const std::int64_t jittered =
        static_cast<std::int64_t>(ce.address.row) + rng.UniformInt(-64, 64);
    ce.address.row = static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(jittered, 0, rows - 1));
    dense.events.push_back(ce);
  }
  std::stable_sort(dense.events.begin(), dense.events.end(),
                   [](const trace::MceRecord& a, const trace::MceRecord& b) {
                     return a.time_s < b.time_s;
                   });
  return dense;
}

/// Fleet, trained models, and a standalone block model for the rescan path,
/// built once and shared read-only by every benchmark.
struct BenchWorld {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  std::vector<trace::BankHistory> banks;
  std::vector<trace::BankHistory> dense_banks;
  std::vector<const trace::BankHistory*> uer_banks;
  std::vector<trace::MceRecord> dense_stream;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;
  /// Same learner family over the same dataset as single_pred's internal
  /// model; the rescan strategy drives it through per-block Extract calls.
  std::unique_ptr<ml::Classifier> rescan_model;
  std::size_t uer_bank_events = 0;

  BenchWorld()
      : fleet([] {
          hbm::TopologyConfig topology;
          trace::CalibrationProfile profile;
          profile.scale = 0.1;
          return trace::FleetGenerator(topology, profile).Generate(123);
        }()),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    Rng dense_rng(31);
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      dense_banks.push_back(
          Densify(bank, 1000, topology.rows_per_bank, dense_rng));
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    for (const trace::BankHistory& bank : dense_banks) {
      uer_banks.push_back(&bank);
      uer_bank_events += bank.events.size();
      dense_stream.insert(dense_stream.end(), bank.events.begin(),
                          bank.events.end());
    }
    std::stable_sort(dense_stream.begin(), dense_stream.end(),
                     [](const trace::MceRecord& a, const trace::MceRecord& b) {
                       return a.time_s < b.time_s;
                     });
    Rng rng(7);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
    rescan_model = core::MakeCrossRowLearner(ml::LearnerKind::kRandomForest);
    const ml::Dataset block_data = single_pred.BuildDataset(singles);
    Rng model_rng(7);
    rescan_model->Fit(block_data, model_rng);
  }

  const core::CrossRowPredictor& effective_double() const {
    return double_ok ? double_pred : single_pred;
  }
  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }
};

const BenchWorld& World() {
  static const BenchWorld* world = new BenchWorld();
  return *world;
}

/// The pre-refactor Cordial replay: identical decisions to CordialStrategy,
/// but classification and every one of the 16 block predictions per anchor
/// rescan the bank's raw event list instead of querying a profile.
class RescanCordialStrategy final : public core::IsolationStrategy {
 public:
  RescanCordialStrategy(const core::PatternClassifier& classifier,
                        const core::CrossRowPredictor& predictor,
                        const ml::Classifier& block_model)
      : classifier_(classifier),
        predictor_(predictor),
        block_model_(block_model) {}

  void OnBankStart(const trace::BankHistory&) override {
    uer_events_seen_ = 0;
    anchors_used_ = 0;
    classified_ = false;
    bank_class_ = hbm::FailureClass::kScattered;
    last_anchor_row_ = -1;
  }

  void OnEvent(const trace::BankHistory& bank, std::size_t event_index,
               hbm::SparingLedger& ledger) override {
    const trace::MceRecord& r = bank.events[event_index];
    if (r.type != hbm::ErrorType::kUer) return;
    ++uer_events_seen_;
    const core::CrossRowConfig& config = predictor_.config();
    if (uer_events_seen_ < config.trigger_uers) return;

    if (!classified_) {
      bank_class_ = classifier_.Classify(bank);
      classified_ = true;
      if (bank_class_ == hbm::FailureClass::kScattered) {
        ledger.TrySpareBank(bank.bank_key);
        return;
      }
    }
    if (bank_class_ == hbm::FailureClass::kScattered) return;
    if (static_cast<std::int64_t>(r.address.row) == last_anchor_row_) return;
    if (anchors_used_ >= config.max_anchors_per_bank) return;
    last_anchor_row_ = r.address.row;
    ++anchors_used_;

    const core::CrossRowFeatureExtractor& extractor = predictor_.extractor();
    const core::BlockWindow window = extractor.WindowAt(r.address.row);
    for (std::size_t b = 0; b < config.n_blocks; ++b) {
      const auto range = window.BlockRange(b);
      if (!range.has_value()) continue;
      // The pre-refactor hot spot: one full-history feature extraction per
      // (anchor, block).
      const std::vector<double> features =
          extractor.Extract(bank, r.time_s, r.address.row, b);
      const std::vector<double> proba = block_model_.PredictProba(features);
      if (proba[1] < config.positive_threshold) continue;
      for (std::uint32_t row = range->first; row <= range->second; ++row) {
        ledger.TrySpareRow(bank.bank_key, row);
      }
    }
  }

  std::unique_ptr<core::IsolationStrategy> Clone() const override {
    return std::make_unique<RescanCordialStrategy>(*this);
  }
  const std::string& name() const override { return name_; }

 private:
  const core::PatternClassifier& classifier_;
  const core::CrossRowPredictor& predictor_;
  const ml::Classifier& block_model_;
  std::string name_ = "Cordial (rescan)";

  std::size_t uer_events_seen_ = 0;
  std::size_t anchors_used_ = 0;
  bool classified_ = false;
  hbm::FailureClass bank_class_ = hbm::FailureClass::kScattered;
  std::int64_t last_anchor_row_ = -1;
};

void BM_IcrReplayRescan(benchmark::State& state) {
  const BenchWorld& w = World();
  SetThreadCount(static_cast<std::size_t>(state.range(0)));
  const core::IcrEvaluator evaluator(w.topology);
  RescanCordialStrategy strategy(w.classifier, w.single_pred,
                                 *w.rescan_model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(w.uer_banks, strategy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.uer_bank_events));
  SetThreadCount(0);
}
BENCHMARK(BM_IcrReplayRescan)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_IcrReplayIncremental(benchmark::State& state) {
  const BenchWorld& w = World();
  SetThreadCount(static_cast<std::size_t>(state.range(0)));
  const core::IcrEvaluator evaluator(w.topology);
  core::CordialStrategy strategy(w.classifier, w.single_pred,
                                 w.effective_double());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(w.uer_banks, strategy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.uer_bank_events));
  SetThreadCount(0);
}
BENCHMARK(BM_IcrReplayIncremental)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EngineStreaming(benchmark::State& state) {
  const BenchWorld& w = World();
  for (auto _ : state) {
    core::PredictionEngine engine(w.topology, w.classifier, w.single_pred,
                                  w.double_or_null());
    for (const trace::MceRecord& record : w.dense_stream) {
      engine.Observe(record);
    }
    benchmark::DoNotOptimize(engine.stats().uer_rows_covered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.dense_stream.size()));
}
BENCHMARK(BM_EngineStreaming)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_engine.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
