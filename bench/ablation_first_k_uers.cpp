// Ablation A1: how many leading UER events should pattern classification
// consume? The paper argues the first THREE are the pragmatic trade-off
// (§IV-C): one or two cannot separate the classes, while waiting for more
// delays intervention. This bench sweeps k = 1..5.
#include "bench_common.hpp"
#include "core/pattern_classifier.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  auto args = bench::BenchArgs::Parse(argc, argv);
  if (argc <= 1) args.scale = 0.5;
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Ablation A1: first-k UERs for pattern classification",
                     args, fleet);

  hbm::AddressCodec codec(fleet.topology);
  const auto banks = fleet.log.GroupByBank(codec);
  analysis::PatternLabeler labeler(fleet.topology);
  std::vector<core::LabelledBank> labelled;
  for (const auto& bank : banks) {
    if (!bank.HasUer()) continue;
    labelled.push_back(core::LabelledBank{&bank, labeler.LabelClass(bank)});
  }

  Rng split_rng(args.seed + 1);
  ml::Dataset label_only(1, hbm::kNumFailureClasses);
  for (const auto& lb : labelled) {
    const double zero = 0.0;
    label_only.AddRow(std::span<const double>(&zero, 1),
                      static_cast<int>(lb.label));
  }
  const auto split = ml::StratifiedSplit(label_only, 0.3, split_rng);
  std::vector<core::LabelledBank> train, test;
  for (std::size_t i : split.train) train.push_back(labelled[i]);
  for (std::size_t i : split.test) test.push_back(labelled[i]);

  TextTable table({"k (UERs used)", "Weighted F1", "Single F1", "Double F1",
                   "Scattered F1"});
  for (std::size_t k = 1; k <= 5; ++k) {
    core::PatternClassifier classifier(fleet.topology,
                                       ml::LearnerKind::kRandomForest, k);
    Rng rng(args.seed + 2);
    classifier.Train(train, rng);
    const ml::ConfusionMatrix cm = classifier.Evaluate(test);
    table.AddRow(
        {std::to_string(k), TextTable::FormatDouble(cm.WeightedAverage().f1),
         TextTable::FormatDouble(
             cm.Metrics(static_cast<int>(
                            hbm::FailureClass::kSingleRowClustering))
                 .f1),
         TextTable::FormatDouble(
             cm.Metrics(static_cast<int>(
                            hbm::FailureClass::kDoubleRowClustering))
                 .f1),
         TextTable::FormatDouble(
             cm.Metrics(static_cast<int>(hbm::FailureClass::kScattered)).f1)});
  }
  std::cout << table.Render(
      "Pattern classification quality vs UER events consumed (RF)");
  std::cout << "\nexpected shape: large jump from k=1/2 to k=3, diminishing\n"
               "returns beyond — supporting the paper's first-3-UER design.\n";
  return 0;
}
