// ICR under logical->physical row remapping, with a read-disturb component
// in the failure mix (extends the paper's Table IV: the paper's fleet has
// no vendor row scramble and no RowHammer-style shape).
//
// Three arms over the SAME physical fleet (the generator plants faults in
// physical row space and remapping consumes no randomness, so one seed
// pins one fleet across all arms):
//
//   identity       — logs carry physical rows; the paper's setting.
//   swizzle-naive  — the device scrambles rows (bit-swizzle k=3) and the
//                    consumer analyses the logical rows as-is. Cross-row
//                    locality is torn apart at exactly the +-1/+-2
//                    distances Cordial's features key on.
//   swizzle-aware  — same logs, but the consumer undoes the scramble
//                    (RemapLogRowsToPhysical) before analysis. Must be
//                    bit-identical to the identity arm — asserted here by
//                    comparing the full serialized logs.
//
// Each arm reports Cordial (random forest) and the Neighbor-Rows baseline.
// The headline: Neighbor Rows collapses under a naive scramble (its fixed
// +-2 window almost never covers the scrambled victim), Cordial degrades
// but keeps a margin (bank-level features survive any per-bank permutation;
// only row-distance features break), and awareness restores everything.
#include <sstream>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "trace/log_codec.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  const auto args = bench::BenchArgs::Parse(argc, argv);

  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = args.scale;
  // Keep the paper's five-shape mix at 85% of its relative weight and give
  // the remaining ~15% to read-disturb incidents.
  const double keep = 0.85;
  profile.mix_single *= keep;
  profile.mix_double *= keep;
  profile.mix_half *= keep;
  profile.mix_scattered *= keep;
  profile.mix_column *= keep;
  profile.mix_read_disturb =
      1.0 - (profile.mix_single + profile.mix_double + profile.mix_half +
             profile.mix_scattered + profile.mix_column);

  const hbm::RowMapping swizzle =
      hbm::RowMapping::BitSwizzle(topology.rows_per_bank, 3);

  std::cerr << "generating identity-mapped fleet (scale=" << args.scale
            << ", seed=" << args.seed << ")...\n";
  const trace::GeneratedFleet identity =
      trace::FleetGenerator(topology, profile).Generate(args.seed);
  std::cerr << "generating " << swizzle.Describe() << " fleet...\n";
  const trace::GeneratedFleet swizzled =
      trace::FleetGenerator(topology, profile, {}, {}, swizzle)
          .Generate(args.seed);

  // The aware consumer: same scrambled logs, descrambled before analysis.
  // Remapping preserves stream order, but the generator emits logs in
  // canonical (time, address, type) order and equal-time ties were broken
  // by *logical* row — re-sort so the comparison below is order-for-order.
  trace::GeneratedFleet aware = swizzled;
  aware.log = trace::RemapLogRowsToPhysical(swizzled.log, swizzle);
  aware.log.Sort();

  // Descrambling must recover the identity arm's log bit-for-bit: one
  // seed, one physical fleet, the mapping an involution on every record.
  const auto serialize = [](const trace::ErrorLog& log) {
    std::ostringstream out;
    trace::LogCodec::WriteCsv(log, out);
    return out.str();
  };
  if (serialize(aware.log) != serialize(identity.log)) {
    std::cerr << "FAIL: descrambled log differs from the identity log\n";
    return 1;
  }
  std::cout << "== Table V: ICR under row remapping ==\n"
            << "synthetic fleet: " << identity.log.size()
            << " MCE records across " << identity.banks.size()
            << " faulty banks, read-disturb mix "
            << TextTable::FormatPercent(profile.mix_read_disturb)
            << " (scale " << args.scale << ", seed " << args.seed << ")\n"
            << "descrambled swizzle log == identity log: OK\n\n";

  struct Arm {
    const char* name;
    const trace::GeneratedFleet* fleet;
  };
  const Arm arms[] = {{"identity", &identity},
                      {"swizzle-naive", &swizzled},
                      {"swizzle-aware", &aware}};

  TextTable table({"Row mapping", "Cordial ICR", "Cordial F1",
                   "Neighbor Rows ICR", "Neighbor Rows F1"});
  double identity_icr = -1.0, aware_icr = -2.0;
  for (const Arm& arm : arms) {
    core::PipelineConfig config;
    config.learner = ml::LearnerKind::kRandomForest;
    core::CordialPipeline pipeline(topology, config);
    std::cerr << "running pipeline on " << arm.name << " arm...\n";
    const core::PipelineResult result =
        pipeline.Run(*arm.fleet, args.seed + 3);
    table.AddRow({arm.name,
                  TextTable::FormatPercent(result.cordial.icr.Icr()),
                  TextTable::FormatDouble(result.cordial.block_metrics.f1),
                  TextTable::FormatPercent(result.neighbor_baseline.icr.Icr()),
                  TextTable::FormatDouble(
                      result.neighbor_baseline.block_metrics.f1)});
    if (std::string(arm.name) == "identity") {
      identity_icr = result.cordial.icr.Icr();
    } else if (std::string(arm.name) == "swizzle-aware") {
      aware_icr = result.cordial.icr.Icr();
    }
  }
  std::cout << table.Render(
      "ICR under logical->physical row remapping (read-disturb mix)");
  if (identity_icr != aware_icr) {
    std::cerr << "FAIL: swizzle-aware ICR (" << aware_icr
              << ") != identity ICR (" << identity_icr << ")\n";
    return 1;
  }
  std::cout << "\nswizzle-aware == identity (exact): OK\n"
            << "shape check: naive scramble hurts Neighbor Rows (fixed +-2\n"
            << "window) far more than Cordial (bank-level locality features\n"
            << "survive any per-bank permutation); awareness restores the\n"
            << "identity numbers exactly.\n";
  return 0;
}
