// Reproduces paper Fig 3(b): the bank failure pattern distribution, both
// from planted ground truth and as recovered by the rule-based labeler.
#include "analysis/empirical.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Fig 3(b): bank failure pattern distribution", args, fleet);

  hbm::AddressCodec codec(fleet.topology);
  const auto banks = fleet.log.GroupByBank(codec);
  analysis::PatternLabeler labeler(fleet.topology);
  const auto dist = analysis::ComputePatternDistribution(banks, labeler);

  std::map<hbm::PatternShape, std::uint64_t> truth_counts;
  std::uint64_t truth_total = 0;
  for (const auto& truth : fleet.banks) {
    if (truth.shape == hbm::PatternShape::kCeOnly) continue;
    ++truth_counts[truth.shape];
    ++truth_total;
  }

  struct PaperRow {
    hbm::PatternShape shape;
    double fraction;
  };
  static constexpr PaperRow kPaper[] = {
      {hbm::PatternShape::kSingleRowCluster, 0.682},
      {hbm::PatternShape::kDoubleRowCluster, 0.099},
      {hbm::PatternShape::kHalfTotalRowCluster, 0.073},
      {hbm::PatternShape::kScattered, 0.125},
      {hbm::PatternShape::kWholeColumn, 0.021},
  };

  TextTable table({"Pattern", "Labelled", "Planted", "Paper"});
  for (const auto& row : kPaper) {
    const double planted =
        truth_total == 0
            ? 0.0
            : static_cast<double>(truth_counts[row.shape]) /
                  static_cast<double>(truth_total);
    table.AddRow({hbm::PatternShapeName(row.shape),
                  TextTable::FormatPercent(dist.Fraction(row.shape)),
                  TextTable::FormatPercent(planted),
                  TextTable::FormatPercent(row.fraction)});
  }
  std::cout << table.Render("Bank failure pattern distribution over " +
                            std::to_string(dist.total_uer_banks) +
                            " observed UER banks");

  const double agreement = analysis::LabelerAgreement(fleet, labeler);
  std::cout << "\nrule-labeler vs planted ground truth agreement "
               "(class level): "
            << TextTable::FormatPercent(agreement) << "\n";
  std::cout << "\nshape check: aggregation patterns dominate (~78% combined),\n"
               "which is what makes cross-row prediction broadly applicable.\n";
  return 0;
}
