// Reproduces paper Fig 4: statistical significance (chi-square) of cross-row
// UER locality across row-distance thresholds, with an ASCII curve.
#include <algorithm>

#include "analysis/locality.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Fig 4: statistical significance of distance thresholds",
                     args, fleet);

  hbm::AddressCodec codec(fleet.topology);
  const auto banks = fleet.log.GroupByBank(codec);
  const auto sweep = analysis::ComputeLocalitySweep(
      banks, fleet.topology, analysis::DefaultLocalityThresholds());

  double max_stat = 0.0;
  for (const auto& pt : sweep) max_stat = std::max(max_stat, pt.chi_square);

  TextTable table({"Row Distance Threshold", "Chi-Squared Value", "p-value",
                   "Capture Rate", "Curve"});
  for (const auto& pt : sweep) {
    const int bar_len =
        max_stat == 0.0
            ? 0
            : static_cast<int>(40.0 * pt.chi_square / max_stat + 0.5);
    table.AddRow({std::to_string(pt.threshold),
                  TextTable::FormatDouble(pt.chi_square, 1),
                  pt.p_value < 1e-12 ? "<1e-12"
                                     : TextTable::FormatDouble(pt.p_value, 6),
                  TextTable::FormatPercent(pt.CaptureRate()),
                  std::string(static_cast<std::size_t>(bar_len), '#')});
  }
  std::cout << table.Render("Chi-square of row-aggregation vs distance "
                            "threshold");

  const std::uint32_t peak = analysis::PeakThreshold(sweep);
  std::cout << "\nmeasured peak threshold: " << peak
            << " rows (paper: strongest significance at 128 rows)\n";
  std::cout << "shape check: the statistic rises to an interior maximum at\n"
               "the characteristic cluster scale and declines monotonically\n"
               "toward 2048 — the basis for the 128-row prediction window.\n";
  return 0;
}
