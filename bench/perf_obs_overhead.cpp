// Observability overhead gate (records/sec).
//
// The metrics layer is compiled into the serving hot path, so its cost must
// be pinned, not assumed. This benchmark drives one fleet stream through two
// FleetServers that differ only in FleetServerConfig::instrument:
//
//   * baseline      — instrument=false: null metric pointers, no clock
//                     reads; byte-for-byte the pre-observability hot path.
//   * instrumented  — instrument=true, plus a live AdminServer that nobody
//                     scrapes: the steady-state a monitored daemon runs in.
//
// Repetitions interleave the two configurations (A B A B ...) so thermal and
// scheduler drift hits both equally, and each side keeps its best run (the
// least-perturbed measurement of the same fixed work). Queue capacity
// exceeds the stream so wall time is engine work, not backpressure.
//
// Emits BENCH_obs.json and exits non-zero when the instrumented path is more
// than --threshold percent (default 5) slower than baseline — tier-1 runs
// this, so an expensive metric cannot land silently.
//
// Usage: perf_obs_overhead [--reps N] [--passes N] [--shards N]
//                          [--threshold PCT] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/rng.hpp"
#include "obs/admin_server.hpp"
#include "obs/metrics.hpp"
#include "serve/fleet_server.hpp"
#include "trace/fleet.hpp"

namespace {

using namespace cordial;

/// UER banks padded with CE background to deployment-like event densities
/// (same construction as perf_serve_throughput).
trace::BankHistory Densify(const trace::BankHistory& bank,
                           std::size_t target_events, std::uint32_t rows,
                           Rng& rng) {
  trace::BankHistory dense = bank;
  const double horizon = bank.events.back().time_s;
  while (dense.events.size() < target_events) {
    trace::MceRecord ce = bank.events[rng.UniformU64(bank.events.size())];
    ce.type = hbm::ErrorType::kCe;
    ce.time_s = rng.UniformReal(0.0, horizon);
    const std::int64_t jittered =
        static_cast<std::int64_t>(ce.address.row) + rng.UniformInt(-64, 64);
    ce.address.row = static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(jittered, 0, rows - 1));
    dense.events.push_back(ce);
  }
  std::stable_sort(dense.events.begin(), dense.events.end(),
                   [](const trace::MceRecord& a, const trace::MceRecord& b) {
                     return a.time_s < b.time_s;
                   });
  return dense;
}

struct BenchWorld {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  std::vector<trace::MceRecord> stream;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;

  BenchWorld()
      : fleet([] {
          hbm::TopologyConfig topology;
          trace::CalibrationProfile profile;
          profile.scale = 0.08;
          return trace::FleetGenerator(topology, profile).Generate(123);
        }()),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    const auto banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    std::vector<trace::BankHistory> dense_banks;
    Rng dense_rng(31);
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      dense_banks.push_back(
          Densify(bank, 1000, topology.rows_per_bank, dense_rng));
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    for (const trace::BankHistory& bank : dense_banks) {
      stream.insert(stream.end(), bank.events.begin(), bank.events.end());
    }
    std::stable_sort(stream.begin(), stream.end(),
                     [](const trace::MceRecord& a, const trace::MceRecord& b) {
                       return a.time_s < b.time_s;
                     });
    Rng rng(7);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
  }

  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }
};

/// One measurement: `passes` time-shifted replays of the stream through a
/// fresh server (longer runs drown scheduler noise that a single ~40ms
/// replay cannot); returns records/sec. Work is deterministic and identical
/// for both configurations — `instrument` only toggles the metrics layer.
double RunOnce(const BenchWorld& w, std::size_t shards, std::size_t passes,
               bool instrument) {
  serve::FleetServerConfig config;
  config.shard_count = shards;
  config.instrument = instrument;
  config.queue.capacity = w.stream.size() + 1;
  serve::FleetServer server(w.topology, w.classifier, w.single_pred,
                            w.double_or_null(), config);

  obs::AdminServer admin;  // present but never scraped
  if (instrument) {
    admin.AddHandler("/metrics",
                     "text/plain; version=0.0.4; charset=utf-8", [&] {
                       return obs::RenderPrometheus(server.MetricsSnapshot());
                     });
    admin.Start();
  }

  // Each pass shifts times forward by the stream's span so records stay in
  // non-decreasing time order across passes.
  const double span = w.stream.back().time_s + 1.0;
  server.Start();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t pass = 0; pass < passes; ++pass) {
    const double offset = static_cast<double>(pass) * span;
    for (trace::MceRecord record : w.stream) {
      record.time_s += offset;
      server.Submit(record);
    }
  }
  server.Drain();
  const auto end = std::chrono::steady_clock::now();
  server.Stop();
  if (instrument) admin.Stop();

  const double seconds = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(w.stream.size() * passes) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  // Best-of over interleaved reps: the true overhead is ~1–2%, but a busy
  // container jitters single runs by ±10–20%, so enough reps must land
  // near-unperturbed on both sides for the gap to reflect the code, not
  // the scheduler.
  std::size_t reps = 8;
  std::size_t passes = 4;
  std::size_t shards = 4;
  double threshold_pct = 5.0;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--reps") {
      reps = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--passes") {
      passes = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--shards") {
      shards = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--threshold") {
      threshold_pct = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (reps == 0 || shards == 0 || passes == 0) {
    std::cerr << "--reps, --passes and --shards must be >= 1\n";
    return 2;
  }

  const BenchWorld world;
  std::cout << "stream: " << world.stream.size() << " records x " << passes
            << " pass(es), " << shards << " shard(s), " << reps
            << " interleaved rep(s)\n";

  // Warm both paths once (page-in, branch predictors) before measuring.
  RunOnce(world, shards, 1, false);
  RunOnce(world, shards, 1, true);

  double baseline_best = 0.0, instrumented_best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    // Alternate the A/B order each rep so slow drift cancels instead of
    // consistently penalising whichever side runs second.
    double base, instr;
    if (r % 2 == 0) {
      base = RunOnce(world, shards, passes, false);
      instr = RunOnce(world, shards, passes, true);
    } else {
      instr = RunOnce(world, shards, passes, true);
      base = RunOnce(world, shards, passes, false);
    }
    baseline_best = std::max(baseline_best, base);
    instrumented_best = std::max(instrumented_best, instr);
    std::cout << "  rep " << (r + 1) << ": baseline " << std::fixed
              << static_cast<std::uint64_t>(base) << " rec/s, instrumented "
              << static_cast<std::uint64_t>(instr) << " rec/s\n";
  }

  const double overhead_pct =
      (baseline_best - instrumented_best) / baseline_best * 100.0;
  const bool pass = overhead_pct <= threshold_pct;
  std::cout << "baseline best:     "
            << static_cast<std::uint64_t>(baseline_best) << " rec/s\n"
            << "instrumented best: "
            << static_cast<std::uint64_t>(instrumented_best) << " rec/s\n"
            << "overhead:          " << std::setprecision(2) << overhead_pct
            << "% (threshold " << threshold_pct << "%) — "
            << (pass ? "PASS" : "FAIL") << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"name\": \"perf_obs_overhead\",\n"
      << "  \"stream_records\": " << world.stream.size() << ",\n"
      << "  \"shard_count\": " << shards << ",\n"
      << "  \"passes\": " << passes << ",\n"
      << "  \"repetitions\": " << reps << ",\n"
      << "  \"baseline_records_per_s\": " << baseline_best << ",\n"
      << "  \"instrumented_records_per_s\": " << instrumented_best << ",\n"
      << "  \"overhead_pct\": " << overhead_pct << ",\n"
      << "  \"threshold_pct\": " << threshold_pct << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
