// Engineering micro-benchmarks (google-benchmark): throughput of the hot
// paths — RNG, ECC codec, address packing, log grouping, feature
// extraction, model inference and fleet generation. Not a paper table;
// validates that the library is fast enough for fleet-scale use.
#include <benchmark/benchmark.h>

#include "analysis/labeler.hpp"
#include "core/crossrow.hpp"
#include "core/features.hpp"
#include "core/pattern_classifier.hpp"
#include "hbm/address.hpp"
#include "hbm/ecc.hpp"
#include "ml/classifier.hpp"
#include "trace/fleet.hpp"

namespace {

using namespace cordial;

const trace::GeneratedFleet& SharedFleet() {
  static const trace::GeneratedFleet fleet = [] {
    hbm::TopologyConfig topology;
    trace::CalibrationProfile profile;
    profile.scale = 0.1;
    trace::FleetGenerator generator(topology, profile);
    return generator.Generate(123);
  }();
  return fleet;
}

const std::vector<trace::BankHistory>& SharedBanks() {
  static const std::vector<trace::BankHistory> banks = [] {
    hbm::AddressCodec codec(SharedFleet().topology);
    return SharedFleet().log.GroupByBank(codec);
  }();
  return banks;
}

const trace::BankHistory& FirstUerBank() {
  for (const auto& bank : SharedBanks()) {
    std::size_t uers = 0;
    for (const auto& e : bank.events) {
      uers += e.type == hbm::ErrorType::kUer;
    }
    if (uers >= 3) return bank;
  }
  throw std::runtime_error("no UER bank in shared fleet");
}

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngPoisson(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Poisson(4.0));
  }
}
BENCHMARK(BM_RngPoisson);

void BM_SecDedEncode(benchmark::State& state) {
  std::uint64_t data = 0x0123456789abcdefULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbm::SecDedCodec::Encode(data));
    ++data;
  }
}
BENCHMARK(BM_SecDedEncode);

void BM_SecDedDecodeCorrupted(benchmark::State& state) {
  const auto word = hbm::SecDedCodec::Encode(0xdeadbeefULL);
  int bit = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hbm::SecDedCodec::Decode(hbm::SecDedCodec::FlipBit(word, bit)));
    bit = (bit + 1) % 72;
  }
}
BENCHMARK(BM_SecDedDecodeCorrupted);

void BM_AddressPackUnpack(benchmark::State& state) {
  const hbm::TopologyConfig topology;
  const hbm::AddressCodec codec(topology);
  hbm::DeviceAddress a;
  a.node = 7;
  a.row = 12345;
  for (auto _ : state) {
    const std::uint64_t key = codec.Pack(a);
    benchmark::DoNotOptimize(codec.Unpack(key));
    a.row = (a.row + 1) % topology.rows_per_bank;
  }
}
BENCHMARK(BM_AddressPackUnpack);

void BM_GroupByBank(benchmark::State& state) {
  hbm::AddressCodec codec(SharedFleet().topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SharedFleet().log.GroupByBank(codec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(SharedFleet().log.size()));
}
BENCHMARK(BM_GroupByBank);

void BM_ClassificationFeatures(benchmark::State& state) {
  const core::ClassificationFeatureExtractor extractor(SharedFleet().topology);
  const trace::BankHistory& bank = FirstUerBank();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(bank));
  }
}
BENCHMARK(BM_ClassificationFeatures);

void BM_CrossRowFeatures(benchmark::State& state) {
  const core::CrossRowFeatureExtractor extractor(SharedFleet().topology);
  const trace::BankHistory& bank = FirstUerBank();
  double anchor_t = 0.0;
  std::uint32_t anchor_row = 0;
  for (const auto& e : bank.events) {
    if (e.type == hbm::ErrorType::kUer) {
      anchor_t = e.time_s;
      anchor_row = e.address.row;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(bank, anchor_t, anchor_row, 8));
  }
}
BENCHMARK(BM_CrossRowFeatures);

void BM_RuleLabeler(benchmark::State& state) {
  const analysis::PatternLabeler labeler(SharedFleet().topology);
  const trace::BankHistory& bank = FirstUerBank();
  for (auto _ : state) {
    benchmark::DoNotOptimize(labeler.LabelShape(bank));
  }
}
BENCHMARK(BM_RuleLabeler);

void BM_ForestPredict(benchmark::State& state) {
  static const auto setup = [] {
    analysis::PatternLabeler labeler(SharedFleet().topology);
    std::vector<core::LabelledBank> labelled;
    for (const auto& bank : SharedBanks()) {
      if (!bank.HasUer()) continue;
      labelled.push_back(core::LabelledBank{&bank, labeler.LabelClass(bank)});
    }
    auto classifier = std::make_shared<core::PatternClassifier>(
        SharedFleet().topology, ml::LearnerKind::kRandomForest);
    Rng rng(3);
    classifier->Train(labelled, rng);
    return classifier;
  }();
  const trace::BankHistory& bank = FirstUerBank();
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup->Classify(bank));
  }
}
BENCHMARK(BM_ForestPredict);

void BM_FleetGeneration(benchmark::State& state) {
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = 0.02;
  trace::FleetGenerator generator(topology, profile);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(++seed));
  }
}
BENCHMARK(BM_FleetGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
