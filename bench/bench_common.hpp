// Shared helpers for the reproduction benches: every bench regenerates the
// default calibrated fleet (paper-sized at scale 1.0) and prints its tables
// through TextTable with the paper's reference values alongside.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/labeler.hpp"
#include "common/table.hpp"
#include "hbm/address.hpp"
#include "trace/fleet.hpp"

namespace cordial::bench {

struct BenchArgs {
  double scale = 1.0;
  std::uint64_t seed = 42;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    if (argc > 1) args.scale = std::atof(argv[1]);
    if (argc > 2) args.seed = std::strtoull(argv[2], nullptr, 10);
    return args;
  }
};

inline trace::GeneratedFleet MakeFleet(const BenchArgs& args) {
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = args.scale;
  trace::FleetGenerator generator(topology, profile);
  std::cerr << "generating fleet (scale=" << args.scale
            << ", seed=" << args.seed << ")...\n";
  return generator.Generate(args.seed);
}

inline void PrintHeader(const std::string& what, const BenchArgs& args,
                        const trace::GeneratedFleet& fleet) {
  std::cout << "== " << what << " ==\n"
            << "synthetic fleet: " << fleet.topology.TotalNpus() << " NPUs, "
            << fleet.topology.TotalHbms() << " HBMs; " << fleet.log.size()
            << " MCE records across " << fleet.banks.size()
            << " faulty banks (scale " << args.scale << ", seed " << args.seed
            << ")\n\n";
}

}  // namespace cordial::bench
