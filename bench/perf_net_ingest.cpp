// TCP ingest throughput gate (records/sec).
//
// The network plane must not become the fleet's bottleneck: the reactor,
// the frame assembler and the reply protocol all sit in front of the same
// shard engines an in-process feeder reaches directly, so their combined
// cost is measurable as a throughput ratio. This benchmark drives one
// fleet stream through two paths that share a FleetServer configuration:
//
//   * in-process — SubmitBatch from one feeder thread: the cordial_serverd
//                  file-feed hot path, no sockets anywhere.
//   * tcp        — the same records through a live IngestServer over
//                  --connections loopback clients, each owning the banks
//                  that hash to it (per-bank record order is preserved, as
//                  a shard-aware feeder fleet would).
//
// Repetitions interleave the two paths (A B B A ...) so scheduler drift
// hits both equally, and each side keeps its best run. Queue capacity
// exceeds the stream so wall time is engine + transport work, not
// backpressure.
//
// Emits BENCH_net.json and exits non-zero when TCP ingest lands under
// --threshold percent (default 80) of in-process throughput — tier-1 runs
// this, so a slow network plane cannot land silently.
//
// Usage: perf_net_ingest [--reps N] [--passes N] [--shards N]
//                        [--connections N] [--batch N] [--threshold PCT]
//                        [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/rng.hpp"
#include "hbm/address.hpp"
#include "net/ingest_client.hpp"
#include "net/ingest_server.hpp"
#include "serve/fleet_server.hpp"
#include "trace/fleet.hpp"

namespace {

using namespace cordial;

/// UER banks padded with CE background to deployment-like event densities
/// (same construction as perf_serve_throughput / perf_obs_overhead).
trace::BankHistory Densify(const trace::BankHistory& bank,
                           std::size_t target_events, std::uint32_t rows,
                           Rng& rng) {
  trace::BankHistory dense = bank;
  const double horizon = bank.events.back().time_s;
  while (dense.events.size() < target_events) {
    trace::MceRecord ce = bank.events[rng.UniformU64(bank.events.size())];
    ce.type = hbm::ErrorType::kCe;
    ce.time_s = rng.UniformReal(0.0, horizon);
    const std::int64_t jittered =
        static_cast<std::int64_t>(ce.address.row) + rng.UniformInt(-64, 64);
    ce.address.row = static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(jittered, 0, rows - 1));
    dense.events.push_back(ce);
  }
  std::stable_sort(dense.events.begin(), dense.events.end(),
                   [](const trace::MceRecord& a, const trace::MceRecord& b) {
                     return a.time_s < b.time_s;
                   });
  return dense;
}

struct BenchWorld {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  std::vector<trace::MceRecord> stream;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;

  BenchWorld()
      : fleet([] {
          hbm::TopologyConfig topology;
          trace::CalibrationProfile profile;
          profile.scale = 0.08;
          return trace::FleetGenerator(topology, profile).Generate(123);
        }()),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    const auto banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    std::vector<trace::BankHistory> dense_banks;
    Rng dense_rng(31);
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      dense_banks.push_back(
          Densify(bank, 1000, topology.rows_per_bank, dense_rng));
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    for (const trace::BankHistory& bank : dense_banks) {
      stream.insert(stream.end(), bank.events.begin(), bank.events.end());
    }
    std::stable_sort(stream.begin(), stream.end(),
                     [](const trace::MceRecord& a, const trace::MceRecord& b) {
                       return a.time_s < b.time_s;
                     });
    Rng rng(7);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
  }

  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }
};

serve::FleetServerConfig BenchConfig(const BenchWorld& w, std::size_t shards,
                                     std::size_t passes) {
  serve::FleetServerConfig config;
  config.shard_count = shards;
  config.queue.capacity = w.stream.size() * passes + 1;
  // Feeders replaying in parallel interleave banks differently than the
  // recorded stream; drop skewed stragglers like a live deployment would.
  config.engine.retention.skew_policy = trace::TimeSkewPolicy::kDrop;
  return config;
}

/// In-process reference: one feeder thread, SubmitBatch in `batch`-sized
/// chunks, `passes` time-shifted replays. Returns records/sec.
double RunInProcess(const BenchWorld& w, std::size_t shards,
                    std::size_t passes, std::size_t batch) {
  serve::FleetServer server(w.topology, w.classifier, w.single_pred,
                            w.double_or_null(), BenchConfig(w, shards, passes));
  const double span = w.stream.back().time_s + 1.0;
  server.Start();
  const auto start = std::chrono::steady_clock::now();
  std::vector<trace::MceRecord> chunk;
  chunk.reserve(batch);
  for (std::size_t pass = 0; pass < passes; ++pass) {
    const double offset = static_cast<double>(pass) * span;
    for (std::size_t off = 0; off < w.stream.size(); off += batch) {
      const std::size_t n = std::min(batch, w.stream.size() - off);
      chunk.assign(w.stream.begin() + static_cast<std::ptrdiff_t>(off),
                   w.stream.begin() + static_cast<std::ptrdiff_t>(off + n));
      for (trace::MceRecord& record : chunk) record.time_s += offset;
      server.SubmitBatch(chunk);
    }
  }
  server.Drain();
  const auto end = std::chrono::steady_clock::now();
  server.Stop();
  const double seconds = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(w.stream.size() * passes) / seconds;
}

/// TCP path: the same fleet configuration behind an IngestServer, fed by
/// `connections` loopback clients in parallel. Each client owns the banks
/// whose key hashes to it, so per-bank record order is preserved exactly as
/// a shard-aware feeder fleet preserves it. Returns records/sec.
double RunTcp(const BenchWorld& w, std::size_t shards, std::size_t passes,
              std::size_t batch, std::size_t connections) {
  serve::FleetServer server(w.topology, w.classifier, w.single_pred,
                            w.double_or_null(), BenchConfig(w, shards, passes));
  net::IngestServerConfig net_config;
  net_config.max_connections = connections + 1;
  net::IngestServer ingest(server, net_config);
  server.Start();
  ingest.Start();

  // Partition the stream by bank across the connections, off the clock.
  hbm::AddressCodec codec(w.topology);
  std::vector<std::vector<trace::MceRecord>> parts(connections);
  for (const trace::MceRecord& record : w.stream) {
    parts[serve::FleetServer::ShardIndexOf(codec.BankKey(record.address),
                                           connections)]
        .push_back(record);
  }
  std::vector<net::IngestClient> clients(connections);
  for (net::IngestClient& client : clients) {
    client.Connect("127.0.0.1", ingest.port());
  }

  const double span = w.stream.back().time_s + 1.0;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> feeders;
  feeders.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    feeders.emplace_back([&, c] {
      std::vector<trace::MceRecord> chunk;
      chunk.reserve(batch);
      for (std::size_t pass = 0; pass < passes; ++pass) {
        const double offset = static_cast<double>(pass) * span;
        const std::vector<trace::MceRecord>& mine = parts[c];
        for (std::size_t off = 0; off < mine.size(); off += batch) {
          const std::size_t n = std::min(batch, mine.size() - off);
          chunk.assign(mine.begin() + static_cast<std::ptrdiff_t>(off),
                       mine.begin() + static_cast<std::ptrdiff_t>(off + n));
          for (trace::MceRecord& record : chunk) record.time_s += offset;
          clients[c].SendBatch(chunk);
        }
      }
    });
  }
  for (std::thread& feeder : feeders) feeder.join();
  server.Drain();
  const auto end = std::chrono::steady_clock::now();
  for (net::IngestClient& client : clients) client.Close();
  ingest.Stop();
  server.Stop();
  const double seconds = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(w.stream.size() * passes) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = 6;
  std::size_t passes = 4;
  std::size_t shards = 4;
  std::size_t connections = 8;
  std::size_t batch = 256;
  double threshold_pct = 80.0;
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--reps") {
      reps = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--passes") {
      passes = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--shards") {
      shards = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--connections") {
      connections =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--batch") {
      batch = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--threshold") {
      threshold_pct = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (reps == 0 || passes == 0 || shards == 0 || connections == 0 ||
      batch == 0) {
    std::cerr << "--reps, --passes, --shards, --connections and --batch "
                 "must be >= 1\n";
    return 2;
  }

  const BenchWorld world;
  std::cout << "stream: " << world.stream.size() << " records x " << passes
            << " pass(es), " << shards << " shard(s), " << connections
            << " connection(s), batch " << batch << ", " << reps
            << " interleaved rep(s)\n";

  // Warm both paths once (page-in, listener setup) before measuring.
  RunInProcess(world, shards, 1, batch);
  RunTcp(world, shards, 1, batch, connections);

  double inproc_best = 0.0, tcp_best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    double inproc, tcp;
    if (r % 2 == 0) {
      inproc = RunInProcess(world, shards, passes, batch);
      tcp = RunTcp(world, shards, passes, batch, connections);
    } else {
      tcp = RunTcp(world, shards, passes, batch, connections);
      inproc = RunInProcess(world, shards, passes, batch);
    }
    inproc_best = std::max(inproc_best, inproc);
    tcp_best = std::max(tcp_best, tcp);
    std::cout << "  rep " << (r + 1) << ": in-process " << std::fixed
              << static_cast<std::uint64_t>(inproc) << " rec/s, tcp "
              << static_cast<std::uint64_t>(tcp) << " rec/s\n";
  }

  const double ratio_pct = tcp_best / inproc_best * 100.0;
  const bool pass = ratio_pct >= threshold_pct;
  std::cout << "in-process best: " << static_cast<std::uint64_t>(inproc_best)
            << " rec/s\n"
            << "tcp best:        " << static_cast<std::uint64_t>(tcp_best)
            << " rec/s\n"
            << "tcp/in-process:  " << std::setprecision(2) << ratio_pct
            << "% (threshold " << threshold_pct << "%) — "
            << (pass ? "PASS" : "FAIL") << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"name\": \"perf_net_ingest\",\n"
      << "  \"stream_records\": " << world.stream.size() << ",\n"
      << "  \"shard_count\": " << shards << ",\n"
      << "  \"connections\": " << connections << ",\n"
      << "  \"batch_records\": " << batch << ",\n"
      << "  \"passes\": " << passes << ",\n"
      << "  \"repetitions\": " << reps << ",\n"
      << "  \"inprocess_records_per_s\": " << inproc_best << ",\n"
      << "  \"tcp_records_per_s\": " << tcp_best << ",\n"
      << "  \"tcp_ratio_pct\": " << ratio_pct << ",\n"
      << "  \"threshold_pct\": " << threshold_pct << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
