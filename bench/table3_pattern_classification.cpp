// Reproduces paper Table III: failure-pattern classification performance for
// LightGBM-style, XGBoost-style and Random Forest learners.
#include "bench_common.hpp"
#include "core/pattern_classifier.hpp"
#include "ml/dataset.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Table III: failure pattern classification", args, fleet);

  hbm::AddressCodec codec(fleet.topology);
  const auto banks = fleet.log.GroupByBank(codec);
  analysis::PatternLabeler labeler(fleet.topology);

  std::vector<core::LabelledBank> labelled;
  for (const auto& bank : banks) {
    if (!bank.HasUer()) continue;
    labelled.push_back(core::LabelledBank{&bank, labeler.LabelClass(bank)});
  }
  std::cout << labelled.size() << " UER banks labelled; 70:30 split\n\n";

  // One stratified split shared by all learners.
  Rng split_rng(args.seed + 1);
  ml::Dataset label_only(1, hbm::kNumFailureClasses);
  for (const auto& lb : labelled) {
    const double zero = 0.0;
    label_only.AddRow(std::span<const double>(&zero, 1),
                      static_cast<int>(lb.label));
  }
  const auto split = ml::StratifiedSplit(label_only, 0.3, split_rng);
  std::vector<core::LabelledBank> train, test;
  for (std::size_t i : split.train) train.push_back(labelled[i]);
  for (std::size_t i : split.test) test.push_back(labelled[i]);

  // Paper Table III reference (precision / recall / F1).
  struct PaperCell {
    double p, r, f1;
  };
  static constexpr PaperCell kPaper[3][4] = {
      // LightGBM: double, single, scattered, weighted
      {{0.600, 0.474, 0.529}, {0.921, 0.972, 0.946}, {0.672, 0.629, 0.650},
       {0.833, 0.844, 0.837}},
      // XGBoost
      {{0.611, 0.289, 0.393}, {0.881, 1.000, 0.937}, {0.698, 0.597, 0.643},
       {0.803, 0.835, 0.813}},
      // Random Forest
      {{0.633, 0.500, 0.559}, {0.921, 0.981, 0.950}, {0.696, 0.629, 0.661},
       {0.842, 0.859, 0.854}},
  };
  static constexpr ml::LearnerKind kKinds[] = {ml::LearnerKind::kLgbmStyle,
                                               ml::LearnerKind::kXgbStyle,
                                               ml::LearnerKind::kRandomForest};

  TextTable table({"Model", "Pattern", "Precision", "Recall", "F1 Score",
                   "Paper P", "Paper R", "Paper F1"});
  for (int m = 0; m < 3; ++m) {
    core::PatternClassifier classifier(fleet.topology, kKinds[m]);
    Rng rng(args.seed + 2);
    classifier.Train(train, rng);
    const ml::ConfusionMatrix cm = classifier.Evaluate(test);

    static constexpr hbm::FailureClass kOrder[] = {
        hbm::FailureClass::kDoubleRowClustering,
        hbm::FailureClass::kSingleRowClustering,
        hbm::FailureClass::kScattered};
    for (int c = 0; c < 3; ++c) {
      const auto metrics = cm.Metrics(static_cast<int>(kOrder[c]));
      table.AddRow({ml::LearnerKindName(kKinds[m]),
                    hbm::FailureClassName(kOrder[c]),
                    TextTable::FormatDouble(metrics.precision),
                    TextTable::FormatDouble(metrics.recall),
                    TextTable::FormatDouble(metrics.f1),
                    TextTable::FormatDouble(kPaper[m][c].p),
                    TextTable::FormatDouble(kPaper[m][c].r),
                    TextTable::FormatDouble(kPaper[m][c].f1)});
    }
    const auto weighted = cm.WeightedAverage();
    table.AddRow({ml::LearnerKindName(kKinds[m]), "Weighted Average",
                  TextTable::FormatDouble(weighted.precision),
                  TextTable::FormatDouble(weighted.recall),
                  TextTable::FormatDouble(weighted.f1),
                  TextTable::FormatDouble(kPaper[m][3].p),
                  TextTable::FormatDouble(kPaper[m][3].r),
                  TextTable::FormatDouble(kPaper[m][3].f1)});
    table.AddSeparator();
  }
  std::cout << table.Render(
      "Performance of failure pattern classification (measured vs paper)");
  std::cout << "\nshape check: single-row clustering is the easiest class\n"
               "(F1 ~0.95); double-row is the hardest; weighted F1 lands in\n"
               "the 0.8-0.9 band with Random Forest at or near the top.\n";
  return 0;
}
