// Ablation A2: prediction window and block geometry. The paper fixes a
// 128-row window (motivated by the Fig 4 locality peak) split into 16
// blocks of 8 rows (§IV-D). This bench sweeps both knobs and reports block
// metrics and ICR for Cordial-RF.
#include "bench_common.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  auto args = bench::BenchArgs::Parse(argc, argv);
  if (argc <= 1) args.scale = 0.5;
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Ablation A2: window and block geometry", args, fleet);

  struct Variant {
    std::uint32_t block_size;
    std::uint32_t n_blocks;
  };
  static constexpr Variant kVariants[] = {
      {4, 8},    // 32-row window
      {4, 16},   // 64-row window, fine blocks
      {8, 8},    // 64-row window
      {8, 16},   // 128-row window (paper default)
      {16, 8},   // 128-row window, coarse blocks
      {8, 32},   // 256-row window
      {16, 16},  // 256-row window, coarse blocks
      {8, 64},   // 512-row window
  };

  TextTable table({"Window (rows)", "Block Size", "Blocks", "Precision",
                   "Recall", "F1", "ICR", "Rows Spared"});
  for (const Variant& v : kVariants) {
    core::PipelineConfig config;
    config.learner = ml::LearnerKind::kRandomForest;
    config.crossrow.block_size = v.block_size;
    config.crossrow.n_blocks = v.n_blocks;
    core::CordialPipeline pipeline(fleet.topology, config);
    std::cerr << "window " << v.block_size * v.n_blocks << " = " << v.n_blocks
              << " x " << v.block_size << "...\n";
    const auto result = pipeline.Run(fleet, args.seed + 3);
    const auto& c = result.cordial;
    table.AddRow({std::to_string(v.block_size * v.n_blocks),
                  std::to_string(v.block_size), std::to_string(v.n_blocks),
                  TextTable::FormatDouble(c.block_metrics.precision),
                  TextTable::FormatDouble(c.block_metrics.recall),
                  TextTable::FormatDouble(c.block_metrics.f1),
                  TextTable::FormatPercent(c.icr.Icr()),
                  std::to_string(c.icr.rows_spared)});
  }
  std::cout << table.Render("Cordial-RF across window/block geometries");
  std::cout << "\nexpected shape: ICR rises with window size until the\n"
               "locality scale is covered, then flattens while the sparing\n"
               "cost keeps growing — the paper's 128-row window is the knee.\n";
  return 0;
}
