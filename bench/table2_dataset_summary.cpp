// Reproduces paper Table II: entities with CE / UEO / UER per micro-level.
#include "analysis/empirical.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cordial;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  const auto fleet = bench::MakeFleet(args);
  bench::PrintHeader("Table II: summary of the dataset", args, fleet);

  hbm::AddressCodec codec(fleet.topology);
  const auto summary = analysis::ComputeDatasetSummary(fleet.log, codec);

  struct PaperRow {
    const char* level;
    int ce, ueo, uer, total;
  };
  static constexpr PaperRow kPaper[] = {
      {"NPU", 5497, 327, 418, 5703},   {"HBM", 5944, 330, 421, 6155},
      {"SID", 6049, 341, 440, 6277},   {"PS-CH", 6856, 360, 496, 7136},
      {"BG", 7571, 423, 686, 7970},    {"Bank", 8557, 537, 1074, 9318},
      {"Row", 51518, 4888, 5209, 60693},
  };

  TextTable table({"Micro-level", "With CE", "With UEO", "With UER",
                   "Total Count", "Paper CE", "Paper UEO", "Paper UER",
                   "Paper Total"});
  for (std::size_t i = 0; i < summary.size(); ++i) {
    const auto& row = summary[i];
    const auto& paper = kPaper[i];
    table.AddRow({hbm::LevelName(row.level), std::to_string(row.with_ce),
                  std::to_string(row.with_ueo), std::to_string(row.with_uer),
                  std::to_string(row.total), std::to_string(paper.ce),
                  std::to_string(paper.ueo), std::to_string(paper.uer),
                  std::to_string(paper.total)});
  }
  std::cout << table.Render("Summary of the synthetic industrial dataset "
                            "(measured vs paper)");
  std::cout << "\nshape check: counts grow toward fine levels; UER banks pack\n"
               "into far fewer NPUs (multi-bank fault domains); CE entities\n"
               "vastly outnumber UER entities at every level.\n";
  return 0;
}
